"""Generator-based simulation processes.

A process is a Python generator that yields *wait commands*; the
:class:`Process` wrapper schedules its resumption on the kernel.  Three
commands cover everything the hardware models need:

* :class:`Delay`    — wait a fixed number of picoseconds.
* :class:`WaitCycles` — wait N cycles of a (possibly retunable) clock,
  evaluated at the clock's frequency when the wait begins.
* :class:`WaitEvent`  — park until a one-shot :class:`~repro.sim.signal.Event`
  triggers; the event payload is sent back into the generator.

Example::

    def transfer(sim, clk, icap):
        for word in words:
            icap.write(word)
            yield WaitCycles(clk, 1)
        done.trigger()

    Process(sim, transfer(sim, clk, icap))
    sim.run()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.kernel import Simulator
from repro.sim.signal import Event


class Delay:
    """Wait command: suspend for ``duration_ps`` picoseconds."""

    __slots__ = ("duration_ps",)

    def __init__(self, duration_ps: int) -> None:
        if duration_ps < 0:
            raise SimulationError(f"negative delay: {duration_ps}")
        self.duration_ps = duration_ps


class WaitCycles:
    """Wait command: suspend for ``cycles`` ticks of ``clock``."""

    __slots__ = ("clock", "cycles")

    def __init__(self, clock: Clock, cycles: int) -> None:
        if cycles < 0:
            raise SimulationError(f"negative cycle count: {cycles}")
        self.clock = clock
        self.cycles = cycles


class WaitEvent:
    """Wait command: suspend until ``event`` triggers."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class Process:
    """Drives a generator coroutine on the simulation kernel.

    The process starts immediately (its first segment runs at creation
    time at the current simulation instant, matching the behaviour of a
    module reacting to the edge that spawned it).  When the generator
    returns, :attr:`finished` triggers with the generator's return
    value.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self._sim = sim
        self._generator = generator
        self.name = name
        self.finished = Event(sim, f"{name}.finished")
        if sim.sanitizer is not None:
            sim.sanitizer.on_process_spawn(self)
        self._resume(None)

    @property
    def done(self) -> bool:
        return self.finished.triggered

    @property
    def result(self) -> Any:
        """Return value of the generator; only valid once :attr:`done`."""
        if not self.done:
            raise SimulationError(f"process {self.name!r} still running")
        return self.finished.payload

    def _resume(self, send_value: Any) -> None:
        if self._sim.sanitizer is not None:
            # Relabel the sanitizer's current task: the kernel only
            # sees an anonymous resume lambda, the report should say
            # which process it belonged to.
            self._sim.sanitizer.on_process_resume(self)
        try:
            command = self._generator.send(send_value)
        except StopIteration as stop:
            self.finished.trigger(stop.value)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        # Delay/cycle waits are never cancelled, so they take the
        # kernel's slot-free path (no ScheduledEvent allocation).
        if isinstance(command, Delay):
            self._sim.call_after(command.duration_ps,
                                 lambda: self._resume(None))
        elif isinstance(command, WaitCycles):
            duration = command.clock.cycles_duration(command.cycles)
            self._sim.call_after(duration, lambda: self._resume(None))
        elif isinstance(command, WaitEvent):
            command.event.add_waiter(
                lambda event: self._resume(event.payload)
            )
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command: "
                f"{command!r}"
            )

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"Process({self.name}, {state})"


def run_process(sim: Simulator, generator: Generator[Any, Any, Any],
                name: str = "process",
                until_ps: Optional[int] = None) -> Any:
    """Convenience: spawn a process, run the simulator, return its result."""
    process = Process(sim, generator, name=name)
    sim.run(until_ps)
    if not process.done:
        raise SimulationError(
            f"process {name!r} did not finish by "
            f"{'idle' if until_ps is None else until_ps}"
        )
    return process.result
