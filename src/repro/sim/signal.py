"""Signals and one-shot events.

:class:`Signal` models a named wire carrying a Python value.  Observers
subscribe to changes; hardware models use this for the Start/Finish/EN
handshakes the paper describes.  :class:`Event` is a one-shot
synchronization point (a "rising edge that happens once"), used by
processes that wait for completion notifications.

Both notification loops tolerate callbacks that mutate the listener
list mid-notification: an observer unsubscribed while a change is
being delivered is *not* called for that change, an observer added
while one is being delivered only sees the next change, and a waiter
registered while an event is triggering fires exactly once.  A raising
waiter no longer loses the waiters queued after it.

When a dynamic sanitizer is attached to the simulator
(``sim.sanitizer``, see :mod:`repro.sanitize`), registration and
delivery report the trigger→waiter / set→observer synchronization
edges so the happens-before tracker can order callbacks that
communicate through an :class:`Event` or :class:`Signal` rather than
through the scheduler.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.kernel import Simulator

Observer = Callable[[Any, int], None]


class Signal:
    """A named, observable value with change history support."""

    def __init__(self, sim: Simulator, name: str, initial: Any = 0) -> None:
        self._sim = sim
        self.name = name
        self._value = initial
        self._observers: List[Observer] = []
        self.change_count = 0

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        """Drive the signal.  Observers fire only on an actual change."""
        if value == self._value:
            return
        self._value = value
        self.change_count += 1
        observers = self._observers
        sanitizer = self._sim.sanitizer
        # Snapshot, then re-check membership per delivery: an observer
        # unsubscribed by an earlier callback of this very notification
        # must not see the change, and one subscribed mid-notification
        # only sees the next change (it is absent from the snapshot).
        for observer in tuple(observers):
            if observer not in observers:
                continue
            if sanitizer is not None:
                sanitizer.deliver(self, observer, value, self._sim.now)
            else:
                observer(value, self._sim.now)

    def pulse(self, active: Any = 1, idle: Any = 0) -> None:
        """Drive ``active`` then immediately return to ``idle``.

        Models a single-cycle strobe such as the UReC "Start" input;
        both edges are visible to observers within the same timestamp.
        """
        self.set(active)
        self.set(idle)

    def observe(self, observer: Observer) -> Callable[[], None]:
        """Register a change observer; returns an unsubscribe closure."""
        self._observers.append(observer)
        if self._sim.sanitizer is not None:
            self._sim.sanitizer.on_subscribe(self, observer)

        def unsubscribe() -> None:
            if observer in self._observers:
                self._observers.remove(observer)

        return unsubscribe

    def on_value(self, wanted: Any, callback: Callable[[int], None]) -> None:
        """Invoke ``callback(time)`` once, the next time value == wanted."""

        def observer(value: Any, time_ps: int) -> None:
            if value == wanted:
                unsubscribe()
                callback(time_ps)

        unsubscribe = self.observe(observer)

    def __repr__(self) -> str:
        return f"Signal({self.name}={self._value!r})"


class Event:
    """One-shot completion event with an optional payload."""

    def __init__(self, sim: Simulator, name: str = "event") -> None:
        self._sim = sim
        self.name = name
        self.triggered = False
        self.payload: Any = None
        self.trigger_time: Optional[int] = None
        self._waiters: List[Callable[["Event"], None]] = []

    def trigger(self, payload: Any = None) -> None:
        """Fire the event.  Triggering twice is an error in our models."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.payload = payload
        self.trigger_time = self._sim.now
        sanitizer = self._sim.sanitizer
        # Drain in FIFO order, consuming from the live list: a waiter
        # that raises leaves the ones behind it still queued (state
        # stays inspectable), and a waiter added mid-drain runs
        # immediately via add_waiter's triggered branch, never twice.
        waiters = self._waiters
        while waiters:
            waiter = waiters.pop(0)
            if sanitizer is not None:
                sanitizer.deliver(self, waiter, self)
            else:
                waiter(self)

    def add_waiter(self, callback: Callable[["Event"], None]) -> None:
        """Call ``callback(event)`` at trigger time (immediately if done)."""
        if self.triggered:
            callback(self)
        else:
            self._waiters.append(callback)
            if self._sim.sanitizer is not None:
                self._sim.sanitizer.on_subscribe(self, callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"Event({self.name}, {state})"
