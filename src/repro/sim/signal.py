"""Signals and one-shot events.

:class:`Signal` models a named wire carrying a Python value.  Observers
subscribe to changes; hardware models use this for the Start/Finish/EN
handshakes the paper describes.  :class:`Event` is a one-shot
synchronization point (a "rising edge that happens once"), used by
processes that wait for completion notifications.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.kernel import Simulator

Observer = Callable[[Any, int], None]


class Signal:
    """A named, observable value with change history support."""

    def __init__(self, sim: Simulator, name: str, initial: Any = 0) -> None:
        self._sim = sim
        self.name = name
        self._value = initial
        self._observers: List[Observer] = []
        self.change_count = 0

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        """Drive the signal.  Observers fire only on an actual change."""
        if value == self._value:
            return
        self._value = value
        self.change_count += 1
        for observer in list(self._observers):
            observer(value, self._sim.now)

    def pulse(self, active: Any = 1, idle: Any = 0) -> None:
        """Drive ``active`` then immediately return to ``idle``.

        Models a single-cycle strobe such as the UReC "Start" input;
        both edges are visible to observers within the same timestamp.
        """
        self.set(active)
        self.set(idle)

    def observe(self, observer: Observer) -> Callable[[], None]:
        """Register a change observer; returns an unsubscribe closure."""
        self._observers.append(observer)

        def unsubscribe() -> None:
            if observer in self._observers:
                self._observers.remove(observer)

        return unsubscribe

    def on_value(self, wanted: Any, callback: Callable[[int], None]) -> None:
        """Invoke ``callback(time)`` once, the next time value == wanted."""

        def observer(value: Any, time_ps: int) -> None:
            if value == wanted:
                unsubscribe()
                callback(time_ps)

        unsubscribe = self.observe(observer)

    def __repr__(self) -> str:
        return f"Signal({self.name}={self._value!r})"


class Event:
    """One-shot completion event with an optional payload."""

    def __init__(self, sim: Simulator, name: str = "event") -> None:
        self._sim = sim
        self.name = name
        self.triggered = False
        self.payload: Any = None
        self.trigger_time: Optional[int] = None
        self._waiters: List[Callable[["Event"], None]] = []

    def trigger(self, payload: Any = None) -> None:
        """Fire the event.  Triggering twice is an error in our models."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.payload = payload
        self.trigger_time = self._sim.now
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    def add_waiter(self, callback: Callable[["Event"], None]) -> None:
        """Call ``callback(event)`` at trigger time (immediately if done)."""
        if self.triggered:
            callback(self)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"Event({self.name}, {state})"
