"""Event queue and simulator core.

The kernel is a classic calendar loop: a binary heap of
``(time, sequence, callback)`` entries.  The monotonically increasing
sequence number makes event ordering total and deterministic — two
events scheduled for the same picosecond fire in scheduling order,
which keeps every experiment in the repository exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class Simulator:
    """Deterministic discrete-event simulator with picosecond time."""

    def __init__(self) -> None:
        self._now = 0
        self._sequence = 0
        self._queue: List[Tuple[int, int, Callback]] = []
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled ones included)."""
        return len(self._queue)

    def at(self, time_ps: int, callback: Callback) -> "ScheduledEvent":
        """Schedule ``callback`` at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} ps: simulation time is "
                f"already {self._now} ps"
            )
        handle = ScheduledEvent(time_ps, callback)
        heapq.heappush(self._queue, (time_ps, self._sequence, handle))
        self._sequence += 1
        return handle

    def after(self, delay_ps: int, callback: Callback) -> "ScheduledEvent":
        """Schedule ``callback`` after a relative delay."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        return self.at(self._now + delay_ps, callback)

    def run(self, until_ps: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until_ps`` is reached.

        Returns the final simulation time.  Events scheduled exactly at
        ``until_ps`` are executed (the bound is inclusive), which lets a
        caller step the simulation in precise increments.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._queue:
                time_ps, _seq, handle = self._queue[0]
                if until_ps is not None and time_ps > until_ps:
                    break
                heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = time_ps
                handle.fire()
            if until_ps is not None and until_ps > self._now:
                self._now = until_ps
        finally:
            self._running = False
        return self._now

    def run_until_idle(self) -> int:
        """Drain every pending event; convenience alias of :meth:`run`."""
        return self.run()

    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        while self._queue:
            time_ps, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time_ps
            handle.fire()
            return True
        return False


class ScheduledEvent:
    """Handle returned by :meth:`Simulator.at`; supports cancellation."""

    __slots__ = ("time_ps", "_callback", "cancelled", "fired")

    def __init__(self, time_ps: int, callback: Callback) -> None:
        self.time_ps = time_ps
        self._callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def fire(self) -> None:
        if self.cancelled or self.fired:
            return
        self.fired = True
        self._callback()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        # heapq compares tuples element-wise; the sequence number always
        # breaks ties before reaching the handle, but heapq still
        # requires the final element to be orderable on some platforms.
        return self.time_ps < other.time_ps
