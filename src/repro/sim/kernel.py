"""Event queue and simulator core.

The kernel is a classic calendar loop: a binary heap of
``(time, sequence, handle, callback)`` entries.  The monotonically
increasing sequence number makes event ordering total and
deterministic — two events scheduled for the same picosecond fire in
scheduling order, which keeps every experiment in the repository
exactly reproducible.  Because the ``(time, sequence)`` prefix is
unique, ``heapq`` never compares the trailing elements.

Two scheduling surfaces share the queue:

* :meth:`Simulator.at` / :meth:`Simulator.after` return a
  :class:`ScheduledEvent` handle that supports cancellation.
* :meth:`Simulator.call_at` / :meth:`Simulator.call_after` /
  :meth:`Simulator.schedule_batch` are the slot-free fast path: no
  handle is allocated, the callback goes straight onto the heap.
  Hot paths that never cancel (process delays, clock ticks, event
  storms) use these to skip one object allocation per event.

Cancelled handles stay in the heap until their timestamp is reached,
but the kernel counts them and lazily compacts the heap when more
than half of it is dead, so missions that schedule-and-cancel in a
loop do not grow the queue without bound.

**Now-bucket fast path.**  Dense event storms — a controller that
reacts to an event by scheduling more work *at the same instant*
(zero-delay waits, combinational ripple) — would pay a heap push and
pop per event even though every one of them fires at the current
time.  While :meth:`run` is dispatching, events scheduled exactly at
``now`` are therefore diverted to a plain FIFO list (a one-slot time
wheel), consumed with a cursor instead of heap sifts.  Ordering stays
exactly the historical (time, sequence) total order: every entry
already queued for ``now`` predates (has a lower sequence number
than) every bucket entry, so the dispatch loop prefers the drain
stack / heap head while its timestamp equals ``now`` and only then
consumes the bucket in FIFO order.  The bucket is always empty
outside :meth:`run`; if a callback raises, the remnant is merged back
into the heap so no event is lost.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]

#: Queue entry: (time_ps, sequence, handle-or-None, callback).
_Entry = Tuple[int, int, Optional["ScheduledEvent"], Callback]

#: Below this queue size compaction is pointless (the heap is tiny).
_COMPACT_MIN_EVENTS = 64

#: Process-wide hook called with every newly constructed
#: :class:`Simulator` — how ``repro.sanitize`` attaches its dynamic
#: checkers to simulators it never sees being built (an example script
#: constructing a system deep inside a library call).  ``None`` (the
#: default) costs one attribute load per construction.
_construction_hook: Optional[Callable[["Simulator"], None]] = None


def set_construction_hook(
        hook: Optional[Callable[["Simulator"], None]],
) -> Optional[Callable[["Simulator"], None]]:
    """Install (or clear, with ``None``) the construction hook.

    Returns the previously installed hook so callers can restore it —
    the ``repro.sanitize`` context managers nest this way.
    """
    global _construction_hook
    previous = _construction_hook
    _construction_hook = hook
    return previous


class Simulator:
    """Deterministic discrete-event simulator with picosecond time."""

    def __init__(self) -> None:
        self._now = 0
        self._sequence = 0
        self._queue: List[_Entry] = []
        #: Descending-sorted stack :meth:`run` drains from the end
        #: (O(1) ``pop()`` instead of a heap sift per event).  Always
        #: empty outside :meth:`run`; new events scheduled while
        #: running land on the heap and interleave by (time, seq).
        self._drain: List[_Entry] = []
        #: Same-instant FIFO (the "now bucket"): events scheduled at
        #: exactly ``now`` while :meth:`run` dispatches land here and
        #: are consumed with :attr:`_bucket_pos` as a cursor — no heap
        #: traffic for same-timestamp storms.  Empty outside ``run``.
        self._bucket: List[_Entry] = []
        self._bucket_pos = 0
        self._running = False
        self._cancelled_in_queue = 0
        self._cancelled_in_bucket = 0
        #: Optional kernel observer (``repro.obs.KernelObserver``
        #: protocol: ``run_started``/``event_fired``/``run_finished``).
        #: ``run()`` selects a separate dispatch loop when one is
        #: attached, so the unobserved hot path carries no per-event
        #: branch for it.
        self.observer = None
        #: Optional dynamic sanitizer (``repro.sanitize`` protocol:
        #: ``on_schedule(sim, time_ps, callback, kind) -> callback``).
        #: Consulted at *scheduling* time only — it wraps callbacks to
        #: observe execution, so the dispatch loops stay untouched.
        self.sanitizer = None
        #: Optional ``random.Random`` enabling seeded tie-break
        #: perturbation (``repro.sanitize.determinism``).  When set,
        #: same-instant event order is legally shuffled: heap entries
        #: get a randomised high field above the unique sequence
        #: number, now-bucket entries insert at a random not-yet-
        #: consumed position.  Cross-instant order, uniqueness of the
        #: ``(time, seq)`` prefix, and the scheduler-before-scheduled
        #: guarantee are all preserved — only the FIFO tie-break among
        #: unordered same-time events varies.  ``None`` (the default)
        #: keeps the historical deterministic scheduling order.
        self._perturb = None
        if _construction_hook is not None:
            _construction_hook(self)

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return (len(self._queue) + len(self._drain)
                - self._cancelled_in_queue
                + len(self._bucket) - self._bucket_pos
                - self._cancelled_in_bucket)

    def at(self, time_ps: int, callback: Callback) -> "ScheduledEvent":
        """Schedule ``callback`` at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} ps: simulation time is "
                f"already {self._now} ps"
            )
        if self.sanitizer is not None:
            callback = self.sanitizer.on_schedule(self, time_ps,
                                                  callback, "at")
        handle = ScheduledEvent(time_ps, callback, self)
        sequence = self._sequence
        perturb = self._perturb
        if self._running and time_ps == self._now:
            handle.in_bucket = True
            entry = (time_ps, sequence, handle, callback)
            if perturb is None:
                self._bucket.append(entry)
            else:
                # Any not-yet-consumed slot is a legal position: the
                # cursor has already moved past the running entry.
                self._bucket.insert(
                    perturb.randint(self._bucket_pos, len(self._bucket)),
                    entry)
        else:
            if perturb is not None:
                sequence = (perturb.getrandbits(32) << 40) | sequence
            heapq.heappush(self._queue,
                           (time_ps, sequence, handle, callback))
        self._sequence += 1
        return handle

    def after(self, delay_ps: int, callback: Callback) -> "ScheduledEvent":
        """Schedule ``callback`` after a relative delay."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        return self.at(self._now + delay_ps, callback)

    def call_at(self, time_ps: int, callback: Callback) -> None:
        """Slot-free fast path of :meth:`at`: no cancellation handle.

        Use for waits that are never cancelled (the overwhelming
        majority — process delays, clock ticks); skips the
        per-event :class:`ScheduledEvent` allocation.
        """
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} ps: simulation time is "
                f"already {self._now} ps"
            )
        if self.sanitizer is not None:
            callback = self.sanitizer.on_schedule(self, time_ps,
                                                  callback, "call_at")
        sequence = self._sequence
        perturb = self._perturb
        if self._running and time_ps == self._now:
            entry = (time_ps, sequence, None, callback)
            if perturb is None:
                self._bucket.append(entry)
            else:
                self._bucket.insert(
                    perturb.randint(self._bucket_pos, len(self._bucket)),
                    entry)
        else:
            if perturb is not None:
                sequence = (perturb.getrandbits(32) << 40) | sequence
            heapq.heappush(self._queue,
                           (time_ps, sequence, None, callback))
        self._sequence += 1

    def call_after(self, delay_ps: int, callback: Callback) -> None:
        """Slot-free fast path of :meth:`after`."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        self.call_at(self._now + delay_ps, callback)

    def schedule_batch(self,
                       events: Iterable[Tuple[int, Callback]]) -> int:
        """Bulk slot-free scheduling of ``(time_ps, callback)`` pairs.

        Pairs are enqueued in iteration order (ties fire in that
        order); returns the number of events scheduled.  The batch is
        materialised in one pass and the heap rebuilt with a single
        O(n) ``heapify`` — no per-event push, handle allocation, or
        method dispatch — the cheapest way to pre-seed a large event
        storm.
        """
        if self.sanitizer is not None:
            sanitizer = self.sanitizer
            events = [(time_ps,
                       sanitizer.on_schedule(self, time_ps, callback,
                                             "batch"))
                      for time_ps, callback in events]
        perturb = self._perturb
        if perturb is None:
            entries: List[_Entry] = [
                (time_ps, sequence, None, callback)
                for sequence, (time_ps, callback)
                in enumerate(events, self._sequence)
            ]
        else:
            entries = [
                (time_ps, (perturb.getrandbits(32) << 40) | sequence,
                 None, callback)
                for sequence, (time_ps, callback)
                in enumerate(events, self._sequence)
            ]
        if not entries:
            return 0
        earliest = min(entries)[0]
        if earliest < self._now:
            raise SimulationError(
                f"cannot schedule at t={earliest} ps: simulation time "
                f"is already {self._now} ps"
            )
        self._sequence += len(entries)
        count = len(entries)
        if self._running:
            # Mid-run, same-instant entries take the now bucket (their
            # sequence numbers already order them after everything
            # queued, so FIFO append preserves the total order).
            now = self._now
            same_instant = [entry for entry in entries if entry[0] == now]
            if same_instant:
                if perturb is None:
                    self._bucket.extend(same_instant)
                else:
                    for entry in same_instant:
                        self._bucket.insert(
                            perturb.randint(self._bucket_pos,
                                            len(self._bucket)),
                            entry)
                entries = [entry for entry in entries if entry[0] != now]
                if not entries:
                    return count
        queue = self._queue
        if queue or self._running:
            # Mid-run the drain loop holds an alias to the queue list,
            # so it must be extended in place, never rebound.
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            self._queue = entries
            heapq.heapify(self._queue)
        return count

    def run(self, until_ps: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until_ps`` is reached.

        Returns the final simulation time.  Events scheduled exactly at
        ``until_ps`` are executed (the bound is inclusive), which lets a
        caller step the simulation in precise increments.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        observer = self.observer
        if observer is not None:
            observer.run_started(self._now, self.pending_events)
        try:
            if observer is None:
                self._drain_loop(until_ps)
            else:
                self._drain_loop_observed(until_ps, observer)
            if until_ps is not None and until_ps > self._now:
                self._now = until_ps
        finally:
            queue = self._queue
            drain = self._drain
            bucket = self._bucket
            dirty = False
            if drain:
                queue.extend(drain)
                drain.clear()
                dirty = True
            if bucket:
                # Only reachable when a callback raised mid-storm: the
                # unconsumed remnant goes back on the heap so the
                # events survive (the bucket is a run-local structure).
                for entry in bucket[self._bucket_pos:]:
                    handle = entry[2]
                    if handle is not None:
                        handle.in_bucket = False
                    queue.append(entry)
                bucket.clear()
                self._bucket_pos = 0
                self._cancelled_in_queue += self._cancelled_in_bucket
                self._cancelled_in_bucket = 0
                dirty = True
            if dirty:
                heapq.heapify(queue)
            self._running = False
            if observer is not None:
                observer.run_finished(self._now, self.pending_events)
        return self._now

    def _drain_loop(self, until_ps: Optional[int]) -> None:
        """The unobserved dispatch loop — the kernel's hot path."""
        queue = self._queue
        drain = self._drain
        bucket = self._bucket
        pop = heapq.heappop
        while True:
            if bucket:
                # Same-instant storm: anything already queued for the
                # current instant predates every bucket entry, so the
                # drain stack / heap head wins while its timestamp
                # equals ``now``; then the bucket drains FIFO.  No
                # ``until_ps`` check — every candidate fires at ``now``.
                now = self._now
                if drain and drain[-1][0] == now:
                    if queue and queue[0] < drain[-1]:
                        entry = pop(queue)
                    else:
                        entry = drain.pop()
                elif queue and queue[0][0] == now:
                    entry = pop(queue)
                else:
                    pos = self._bucket_pos
                    entry = bucket[pos]
                    pos += 1
                    if pos == len(bucket):
                        bucket.clear()
                        pos = 0
                    self._bucket_pos = pos
                    handle = entry[2]
                    if handle is not None:
                        if handle.cancelled:
                            self._cancelled_in_bucket -= 1
                            continue
                        handle.fired = True
                    entry[3]()
                    continue
            elif drain:
                entry = drain[-1]
                if queue and queue[0] < entry:
                    # A callback scheduled something earlier than
                    # the next drained entry; (time, seq) tuple
                    # comparison keeps the total order exact.
                    entry = queue[0]
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    pop(queue)
                else:
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    drain.pop()
            elif queue:
                # Refill the drain stack: one timsort replaces a
                # heap sift per event for everything queued so far.
                queue.sort()
                drain.extend(reversed(queue))
                queue.clear()
                continue
            else:
                break
            handle = entry[2]
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                handle.fired = True
            self._now = entry[0]
            entry[3]()

    def _drain_loop_observed(self, until_ps: Optional[int],
                             observer) -> None:
        """:meth:`_drain_loop` plus an observer hook after each event.

        A structural duplicate of the fast loop (kept in lockstep —
        any dispatch change must land in both) so attaching telemetry
        costs the unobserved path nothing.  ``event_fired`` receives
        the post-dispatch queue depth; the observer decides how often
        to materialise it into a counter track.
        """
        queue = self._queue
        drain = self._drain
        bucket = self._bucket
        pop = heapq.heappop
        while True:
            if bucket:
                now = self._now
                if drain and drain[-1][0] == now:
                    if queue and queue[0] < drain[-1]:
                        entry = pop(queue)
                    else:
                        entry = drain.pop()
                elif queue and queue[0][0] == now:
                    entry = pop(queue)
                else:
                    pos = self._bucket_pos
                    entry = bucket[pos]
                    pos += 1
                    if pos == len(bucket):
                        bucket.clear()
                        pos = 0
                    self._bucket_pos = pos
                    handle = entry[2]
                    if handle is not None:
                        if handle.cancelled:
                            self._cancelled_in_bucket -= 1
                            continue
                        handle.fired = True
                    entry[3]()
                    observer.event_fired(
                        self._now,
                        len(queue) + len(drain) - self._cancelled_in_queue
                        + len(bucket) - self._bucket_pos
                        - self._cancelled_in_bucket)
                    continue
            elif drain:
                entry = drain[-1]
                if queue and queue[0] < entry:
                    entry = queue[0]
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    pop(queue)
                else:
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    drain.pop()
            elif queue:
                queue.sort()
                drain.extend(reversed(queue))
                queue.clear()
                continue
            else:
                break
            handle = entry[2]
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                handle.fired = True
            self._now = entry[0]
            entry[3]()
            observer.event_fired(
                self._now,
                len(queue) + len(drain) - self._cancelled_in_queue
                + len(bucket) - self._bucket_pos
                - self._cancelled_in_bucket)

    def run_until_idle(self) -> int:
        """Drain every pending event; convenience alias of :meth:`run`."""
        return self.run()

    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        while self._queue or self._drain:
            if self._drain and not (self._queue
                                    and self._queue[0] < self._drain[-1]):
                time_ps, _seq, handle, callback = self._drain.pop()
            else:
                time_ps, _seq, handle, callback = heapq.heappop(self._queue)
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                handle.fired = True
            self._now = time_ps
            callback()
            return True
        return False

    def _note_cancelled(self, handle: "ScheduledEvent") -> None:
        """Bookkeeping hook called by :meth:`ScheduledEvent.cancel`.

        When more than half of a non-trivial queue is dead weight, the
        heap is rebuilt without the cancelled entries (lazy
        compaction), bounding memory for schedule-and-cancel loops.
        Bucket-resident handles only bump their own counter — the
        bucket drains within the current instant, so it never needs
        compaction.
        """
        if handle.in_bucket:
            self._cancelled_in_bucket += 1
            return
        self._cancelled_in_queue += 1
        queue = self._queue
        drain = self._drain
        total = len(queue) + len(drain)
        if (total >= _COMPACT_MIN_EVENTS
                and self._cancelled_in_queue * 2 >= total):
            # In-place so a run() loop holding aliases stays valid.
            queue[:] = [entry for entry in queue
                        if entry[2] is None or not entry[2].cancelled]
            heapq.heapify(queue)
            if drain:
                drain[:] = [entry for entry in drain
                            if entry[2] is None or not entry[2].cancelled]
            self._cancelled_in_queue = 0


class ScheduledEvent:
    """Handle returned by :meth:`Simulator.at`; supports cancellation."""

    __slots__ = ("time_ps", "_callback", "cancelled", "fired", "_sim",
                 "in_bucket")

    def __init__(self, time_ps: int, callback: Callback,
                 sim: Optional[Simulator] = None) -> None:
        self.time_ps = time_ps
        self._callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim
        #: True while the entry lives in the kernel's now bucket (set
        #: by :meth:`Simulator.at`, cleared if merged back to the heap)
        #: so cancellation bookkeeping hits the right counter.
        self.in_bucket = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled(self)

    def fire(self) -> None:
        if self.cancelled or self.fired:
            return
        self.fired = True
        self._callback()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        # heapq compares tuples element-wise; the sequence number always
        # breaks ties before reaching the handle, but heapq still
        # requires the entries to be orderable on some platforms.
        return self.time_ps < other.time_ps
