"""Event queue and simulator core.

The kernel is a classic calendar loop: a binary heap of
``(time, sequence, handle, callback)`` entries.  The monotonically
increasing sequence number makes event ordering total and
deterministic — two events scheduled for the same picosecond fire in
scheduling order, which keeps every experiment in the repository
exactly reproducible.  Because the ``(time, sequence)`` prefix is
unique, ``heapq`` never compares the trailing elements.

Two scheduling surfaces share the queue:

* :meth:`Simulator.at` / :meth:`Simulator.after` return a
  :class:`ScheduledEvent` handle that supports cancellation.
* :meth:`Simulator.call_at` / :meth:`Simulator.call_after` /
  :meth:`Simulator.schedule_batch` are the slot-free fast path: no
  handle is allocated, the callback goes straight onto the heap.
  Hot paths that never cancel (process delays, clock ticks, event
  storms) use these to skip one object allocation per event.

Cancelled handles stay in the heap until their timestamp is reached,
but the kernel counts them and lazily compacts the heap when more
than half of it is dead, so missions that schedule-and-cancel in a
loop do not grow the queue without bound.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]

#: Queue entry: (time_ps, sequence, handle-or-None, callback).
_Entry = Tuple[int, int, Optional["ScheduledEvent"], Callback]

#: Below this queue size compaction is pointless (the heap is tiny).
_COMPACT_MIN_EVENTS = 64


class Simulator:
    """Deterministic discrete-event simulator with picosecond time."""

    def __init__(self) -> None:
        self._now = 0
        self._sequence = 0
        self._queue: List[_Entry] = []
        #: Descending-sorted stack :meth:`run` drains from the end
        #: (O(1) ``pop()`` instead of a heap sift per event).  Always
        #: empty outside :meth:`run`; new events scheduled while
        #: running land on the heap and interleave by (time, seq).
        self._drain: List[_Entry] = []
        self._running = False
        self._cancelled_in_queue = 0
        #: Optional kernel observer (``repro.obs.KernelObserver``
        #: protocol: ``run_started``/``event_fired``/``run_finished``).
        #: ``run()`` selects a separate dispatch loop when one is
        #: attached, so the unobserved hot path carries no per-event
        #: branch for it.
        self.observer = None

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return (len(self._queue) + len(self._drain)
                - self._cancelled_in_queue)

    def at(self, time_ps: int, callback: Callback) -> "ScheduledEvent":
        """Schedule ``callback`` at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} ps: simulation time is "
                f"already {self._now} ps"
            )
        handle = ScheduledEvent(time_ps, callback, self)
        heapq.heappush(self._queue,
                       (time_ps, self._sequence, handle, callback))
        self._sequence += 1
        return handle

    def after(self, delay_ps: int, callback: Callback) -> "ScheduledEvent":
        """Schedule ``callback`` after a relative delay."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        return self.at(self._now + delay_ps, callback)

    def call_at(self, time_ps: int, callback: Callback) -> None:
        """Slot-free fast path of :meth:`at`: no cancellation handle.

        Use for waits that are never cancelled (the overwhelming
        majority — process delays, clock ticks); skips the
        per-event :class:`ScheduledEvent` allocation.
        """
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} ps: simulation time is "
                f"already {self._now} ps"
            )
        heapq.heappush(self._queue,
                       (time_ps, self._sequence, None, callback))
        self._sequence += 1

    def call_after(self, delay_ps: int, callback: Callback) -> None:
        """Slot-free fast path of :meth:`after`."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        self.call_at(self._now + delay_ps, callback)

    def schedule_batch(self,
                       events: Iterable[Tuple[int, Callback]]) -> int:
        """Bulk slot-free scheduling of ``(time_ps, callback)`` pairs.

        Pairs are enqueued in iteration order (ties fire in that
        order); returns the number of events scheduled.  The batch is
        materialised in one pass and the heap rebuilt with a single
        O(n) ``heapify`` — no per-event push, handle allocation, or
        method dispatch — the cheapest way to pre-seed a large event
        storm.
        """
        entries: List[_Entry] = [
            (time_ps, sequence, None, callback)
            for sequence, (time_ps, callback)
            in enumerate(events, self._sequence)
        ]
        if not entries:
            return 0
        earliest = min(entries)[0]
        if earliest < self._now:
            raise SimulationError(
                f"cannot schedule at t={earliest} ps: simulation time "
                f"is already {self._now} ps"
            )
        self._sequence += len(entries)
        queue = self._queue
        if queue:
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            self._queue = entries
            heapq.heapify(self._queue)
        return len(entries)

    def run(self, until_ps: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until_ps`` is reached.

        Returns the final simulation time.  Events scheduled exactly at
        ``until_ps`` are executed (the bound is inclusive), which lets a
        caller step the simulation in precise increments.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        observer = self.observer
        if observer is not None:
            observer.run_started(self._now, self.pending_events)
        try:
            if observer is None:
                self._drain_loop(until_ps)
            else:
                self._drain_loop_observed(until_ps, observer)
            if until_ps is not None and until_ps > self._now:
                self._now = until_ps
        finally:
            queue = self._queue
            drain = self._drain
            if drain:
                queue.extend(drain)
                drain.clear()
                heapq.heapify(queue)
            self._running = False
            if observer is not None:
                observer.run_finished(self._now, self.pending_events)
        return self._now

    def _drain_loop(self, until_ps: Optional[int]) -> None:
        """The unobserved dispatch loop — the kernel's hot path."""
        queue = self._queue
        drain = self._drain
        pop = heapq.heappop
        while True:
            if drain:
                entry = drain[-1]
                if queue and queue[0] < entry:
                    # A callback scheduled something earlier than
                    # the next drained entry; (time, seq) tuple
                    # comparison keeps the total order exact.
                    entry = queue[0]
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    pop(queue)
                else:
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    drain.pop()
            elif queue:
                # Refill the drain stack: one timsort replaces a
                # heap sift per event for everything queued so far.
                queue.sort()
                drain.extend(reversed(queue))
                queue.clear()
                continue
            else:
                break
            handle = entry[2]
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                handle.fired = True
            self._now = entry[0]
            entry[3]()

    def _drain_loop_observed(self, until_ps: Optional[int],
                             observer) -> None:
        """:meth:`_drain_loop` plus an observer hook after each event.

        A structural duplicate of the fast loop (kept in lockstep —
        any dispatch change must land in both) so attaching telemetry
        costs the unobserved path nothing.  ``event_fired`` receives
        the post-dispatch queue depth; the observer decides how often
        to materialise it into a counter track.
        """
        queue = self._queue
        drain = self._drain
        pop = heapq.heappop
        while True:
            if drain:
                entry = drain[-1]
                if queue and queue[0] < entry:
                    entry = queue[0]
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    pop(queue)
                else:
                    if until_ps is not None and entry[0] > until_ps:
                        break
                    drain.pop()
            elif queue:
                queue.sort()
                drain.extend(reversed(queue))
                queue.clear()
                continue
            else:
                break
            handle = entry[2]
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                handle.fired = True
            self._now = entry[0]
            entry[3]()
            observer.event_fired(
                self._now,
                len(queue) + len(drain) - self._cancelled_in_queue)

    def run_until_idle(self) -> int:
        """Drain every pending event; convenience alias of :meth:`run`."""
        return self.run()

    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        while self._queue or self._drain:
            if self._drain and not (self._queue
                                    and self._queue[0] < self._drain[-1]):
                time_ps, _seq, handle, callback = self._drain.pop()
            else:
                time_ps, _seq, handle, callback = heapq.heappop(self._queue)
            if handle is not None:
                if handle.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                handle.fired = True
            self._now = time_ps
            callback()
            return True
        return False

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`ScheduledEvent.cancel`.

        When more than half of a non-trivial queue is dead weight, the
        heap is rebuilt without the cancelled entries (lazy
        compaction), bounding memory for schedule-and-cancel loops.
        """
        self._cancelled_in_queue += 1
        queue = self._queue
        drain = self._drain
        total = len(queue) + len(drain)
        if (total >= _COMPACT_MIN_EVENTS
                and self._cancelled_in_queue * 2 >= total):
            # In-place so a run() loop holding aliases stays valid.
            queue[:] = [entry for entry in queue
                        if entry[2] is None or not entry[2].cancelled]
            heapq.heapify(queue)
            if drain:
                drain[:] = [entry for entry in drain
                            if entry[2] is None or not entry[2].cancelled]
            self._cancelled_in_queue = 0


class ScheduledEvent:
    """Handle returned by :meth:`Simulator.at`; supports cancellation."""

    __slots__ = ("time_ps", "_callback", "cancelled", "fired", "_sim")

    def __init__(self, time_ps: int, callback: Callback,
                 sim: Optional[Simulator] = None) -> None:
        self.time_ps = time_ps
        self._callback = callback
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def fire(self) -> None:
        if self.cancelled or self.fired:
            return
        self.fired = True
        self._callback()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        # heapq compares tuples element-wise; the sequence number always
        # breaks ties before reaching the handle, but heapq still
        # requires the entries to be orderable on some platforms.
        return self.time_ps < other.time_ps
