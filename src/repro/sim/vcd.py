"""VCD (Value Change Dump) export of simulation traces.

Writes the standard IEEE-1364 VCD text format, so a UPaRC run's
signals — the power trace, component activity (EN windows), manager
states — can be inspected in GTKWave or any other waveform viewer
alongside real-hardware captures.

Two channel kinds map onto VCD variable types:

* :class:`~repro.sim.trace.ActivityTrace`  -> a 1-bit ``wire``;
* :class:`~repro.sim.trace.ValueTrace`     -> a ``real`` variable.

Example::

    writer = VcdWriter(timescale_ps=1000)          # 1 ns ticks
    writer.add_activity("icap_en", icap.activity)
    writer.add_values("core_power_mw", result.power_trace)
    writer.write("run.vcd")
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple, Union

from repro.errors import SimulationError
from repro.sim.trace import ActivityTrace, ValueTrace

PathLike = Union[str, "os.PathLike[str]"]

_IDENT_ALPHABET = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _identifier(index: int) -> str:
    """Short VCD identifier codes: !, ", ..., !!, !\", ..."""
    if index < 0:
        raise SimulationError("negative identifier index")
    base = len(_IDENT_ALPHABET)
    code = ""
    index += 1
    while index > 0:
        index -= 1
        code = _IDENT_ALPHABET[index % base] + code
        index //= base
    return code


class VcdWriter:
    """Collects channels and serializes one VCD file."""

    def __init__(self, timescale_ps: int = 1,
                 module_name: str = "uparc") -> None:
        if timescale_ps <= 0:
            raise SimulationError("timescale must be positive")
        self._timescale_ps = timescale_ps
        self._module = module_name
        # name -> ("wire"|"real", identifier, [(time_ps, value), ...])
        self._channels: Dict[str, Tuple[str, str, List[Tuple[int, object]]]] = {}

    def _claim(self, name: str, kind: str) -> str:
        if name in self._channels:
            raise SimulationError(f"duplicate VCD channel {name!r}")
        identifier = _identifier(len(self._channels))
        self._channels[name] = (kind, identifier, [])
        return identifier

    def add_activity(self, name: str, activity: ActivityTrace) -> None:
        """One-bit channel: 1 inside every interval, 0 outside."""
        self._claim(name, "wire")
        changes = self._channels[name][2]
        changes.append((0, 0))
        for begin, end in activity.intervals:
            changes.append((begin, 1))
            changes.append((end, 0))

    def add_values(self, name: str, trace: ValueTrace) -> None:
        """Real-valued channel from a sampled trace."""
        self._claim(name, "real")
        changes = self._channels[name][2]
        for sample in trace.samples:
            changes.append((sample.time_ps, sample.value))

    def render(self) -> str:
        """The complete VCD document as a string."""
        lines: List[str] = []
        lines.append("$comment repro UPaRC simulation dump $end")
        lines.append(f"$timescale {self._timescale_ps} ps $end")
        lines.append(f"$scope module {self._module} $end")
        for name, (kind, identifier, _) in self._channels.items():
            if kind == "wire":
                lines.append(f"$var wire 1 {identifier} {name} $end")
            else:
                lines.append(f"$var real 64 {identifier} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")

        # Merge all changes into one time-ordered stream.
        merged: List[Tuple[int, str, str, object]] = []
        for name, (kind, identifier, changes) in self._channels.items():
            for time_ps, value in changes:
                merged.append((time_ps, kind, identifier, value))
        merged.sort(key=lambda item: item[0])

        current_tick = None
        for time_ps, kind, identifier, value in merged:
            tick = time_ps // self._timescale_ps
            if tick != current_tick:
                lines.append(f"#{tick}")
                current_tick = tick
            if kind == "wire":
                lines.append(f"{int(value)}{identifier}")
            else:
                lines.append(f"r{float(value):.6g} {identifier}")
        return "\n".join(lines) + "\n"

    def write(self, path: PathLike) -> int:
        """Write the file; returns the byte count."""
        text = self.render()
        with open(path, "w") as handle:
            handle.write(text)
        return len(text)


def dump_run(result, system, path: PathLike,
             timescale_ps: int = 1000) -> int:
    """Convenience: dump the interesting channels of one UPaRC run.

    ``result`` is a :class:`~repro.results.ReconfigurationResult` with
    a power trace; ``system`` the :class:`~repro.core.system.UPaRCSystem`
    that produced it.
    """
    writer = VcdWriter(timescale_ps=timescale_ps)
    if result.power_trace is not None:
        writer.add_values("core_power_mw", result.power_trace)
    writer.add_activity("icap_en", system.icap.activity)
    writer.add_activity("bram_port_b_en", system.bram.port_b_activity)
    writer.add_activity("manager_busy", system.cpu.busy)
    writer.add_activity("manager_wait", system.cpu.waiting)
    return writer.write(path)
