"""repro — reproduction of UPaRC (Bonamy et al., DATE 2012).

An end-to-end, simulation-based reproduction of the ultra-fast
power-aware reconfiguration controller: the UPaRC system itself
(:mod:`repro.core`), every substrate it needs (discrete-event kernel,
Xilinx-style bitstreams, seven lossless codecs, FPGA component and
power models) and every baseline controller it is compared against.

Quick start::

    from repro import UPaRCSystem, generate_bitstream
    from repro.units import Frequency, DataSize

    system = UPaRCSystem()
    system.set_frequency(Frequency.from_mhz(362.5))
    result = system.run(generate_bitstream(size=DataSize.from_kb(216.5)))
    print(f"{result.bandwidth_decimal_mbps:.0f} MB/s, "
          f"{result.energy.uj_per_kb:.2f} uJ/KB")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.bitstream import generate_bitstream, BitstreamSpec
from repro.core import (
    DagScheduler,
    DagTask,
    DyCloGen,
    Floorplan,
    FrequencyPolicy,
    Manager,
    OperationMode,
    PrefetchScheduler,
    Region,
    Task,
    UPaRCSystem,
    UReC,
)
from repro.controllers import (
    BramHwicap,
    Farm,
    FlashCap,
    MstIcap,
    ReconfigurationController,
    ReconfigurationResult,
    UparcController,
    XpsHwicap,
)
from repro.power import PowerModel, ML605_CALIBRATION
from repro.units import DataSize, Frequency

__version__ = "1.0.0"

__all__ = [
    "generate_bitstream",
    "BitstreamSpec",
    "UPaRCSystem",
    "UReC",
    "DyCloGen",
    "Manager",
    "OperationMode",
    "FrequencyPolicy",
    "Floorplan",
    "Region",
    "DagScheduler",
    "DagTask",
    "PrefetchScheduler",
    "Task",
    "ReconfigurationController",
    "ReconfigurationResult",
    "UparcController",
    "XpsHwicap",
    "BramHwicap",
    "MstIcap",
    "Farm",
    "FlashCap",
    "PowerModel",
    "ML605_CALIBRATION",
    "DataSize",
    "Frequency",
    "__version__",
]
