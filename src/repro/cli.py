"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro table1          # compression ratios
    python -m repro table2          # slice counts
    python -m repro table3          # controller comparison
    python -m repro fig5            # bandwidth surface
    python -m repro fig7            # power traces
    python -m repro energy          # the 45x comparison
    python -m repro all             # everything
    python -m repro table3 --size-kb 128

The same harnesses back the pytest benchmarks; the CLI just prints
the tables (useful for quick exploration and for users without the
dev dependencies installed).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.bandwidth import (
    FIG5_FREQUENCIES_MHZ,
    FIG5_SIZES_KB,
    anchor_points,
    bandwidth_surface,
)
from repro.analysis.comparison import compare_controllers
from repro.analysis.powersweep import (
    PAPER_FIG7,
    energy_comparison,
    fig7_power_sweep,
)
from repro.analysis.report import render_heatmap, render_series, render_table
from repro.bitstream.generator import generate_bitstream
from repro.compress import PAPER_TABLE1_RATIOS, all_codecs
from repro.fpga.area import slices_for
from repro.units import DataSize


def _cmd_table1(args: argparse.Namespace) -> None:
    corpus = [generate_bitstream(size=DataSize.from_kb(kb), seed=seed)
              for kb, seed in ((49, 101), (81, 202), (156, 303))]
    rows = []
    for codec in all_codecs():
        values = [codec.measure(bs.raw_bytes).ratio_percent
                  for bs in corpus]
        measured = sum(values) / len(values)
        paper = PAPER_TABLE1_RATIOS[codec.name]
        rows.append([codec.name, measured, paper, measured - paper])
    print(render_table(["Algorithm", "measured %", "paper %", "delta"],
                       rows, title="Table I -- compression ratios"))


def _cmd_table2(args: argparse.Namespace) -> None:
    paper = {"dyclogen": ("DyCloGen", 24, 18),
             "urec": ("UReC", 26, 26),
             "decompressor": ("Decompressor", 1035, 900)}
    rows = [[label, slices_for(module, "virtex5"), v5,
             slices_for(module, "virtex6"), v6]
            for module, (label, v5, v6) in paper.items()]
    print(render_table(["Module", "V5", "paper", "V6", "paper"], rows,
                       title="Table II -- slices of UPaRC basic blocks"))


def _cmd_table3(args: argparse.Namespace) -> None:
    rows = compare_controllers(size_kb=args.size_kb)
    table = [[row.controller, row.measured_mbps, row.paper_mbps,
              f"{row.relative_error_percent:+.1f}%", row.grade,
              row.max_frequency_mhz, "ok" if row.verified else "FAIL"]
             for row in rows]
    print(render_table(
        ["Controller", "measured MB/s", "paper MB/s", "err",
         "capacity", "Fmax", "CRC"],
        table, title=f"Table III -- controllers ({args.size_kb:g} KB)"))


def _cmd_fig5(args: argparse.Namespace) -> None:
    points = bandwidth_surface()
    by_cell = {(p.size.kb, p.frequency.mhz): p for p in points}
    headers = ["KB \\ MHz"] + [f"{mhz:g}" for mhz in FIG5_FREQUENCIES_MHZ]
    rows = []
    for size_kb in FIG5_SIZES_KB:
        rows.append([f"{size_kb:g}"]
                    + [by_cell[(size_kb, mhz)].effective_mbps
                       for mhz in FIG5_FREQUENCIES_MHZ])
    print(render_table(headers, rows,
                       title="Fig. 5 -- effective bandwidth (MB/s)"))
    print()
    print(render_heatmap(
        [f"{kb:g} KB" for kb in FIG5_SIZES_KB],
        [f"{mhz:g}" for mhz in FIG5_FREQUENCIES_MHZ],
        [[by_cell[(kb, mhz)].effective_mbps
          for mhz in FIG5_FREQUENCIES_MHZ] for kb in FIG5_SIZES_KB],
        title="surface shape (darker = faster)", corner="KB \\ MHz"))
    anchors = anchor_points(points)
    print(f"\nanchors at 362.5 MHz: 6.5 KB -> {anchors['small']:.1f}% "
          f"(paper 78.8%), 247 KB -> {anchors['large']:.1f}% (paper 99%)")


def _cmd_fig7(args: argparse.Namespace) -> None:
    points = fig7_power_sweep()
    rows = []
    for point in points:
        paper_mw, paper_us = PAPER_FIG7[point.frequency.mhz]
        rows.append([f"{point.frequency.mhz:g}", point.plateau_mw,
                     paper_mw, point.reconfiguration_us, paper_us,
                     point.energy_uj])
    print(render_table(
        ["MHz", "plateau mW", "paper", "time us", "paper", "energy uJ"],
        rows, title="Fig. 7 -- power during reconfiguration"))
    print()
    print(render_series([(p.frequency.mhz, p.plateau_mw) for p in points],
                        title="power vs CLK_2", x_label="MHz",
                        y_label="mW"))


def _cmd_validate(args: argparse.Namespace) -> None:
    from repro.analysis.validation import validate_reproduction
    report = validate_reproduction(quick=getattr(args, "quick", False))
    width = max(len(f"{c.source}: {c.statement}")
                for c in report.claims)
    for claim in report.claims:
        label = f"{claim.source}: {claim.statement}"
        status = "PASS" if claim.passed else "FAIL"
        suffix = f"  ({claim.detail})" if claim.detail else ""
        print(f"{label.ljust(width)}  {status}{suffix}")
    print(f"\n{report.summary}")
    if not report.passed:
        raise SystemExit(1)


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.analysis.markdown_report import build_report
    text = build_report()
    if getattr(args, "output", None):
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"report written to {args.output}")
    else:
        print(text)


def _cmd_selftest(args: argparse.Namespace) -> None:
    """Quick library self-validation without pytest."""
    from repro.compress import all_codecs
    from repro.core.system import UPaRCSystem
    from repro.fpga.area import slices_for

    checks = []

    bitstream = generate_bitstream(size=DataSize.from_kb(16))
    for codec in all_codecs():
        ok = codec.decompress(codec.compress(
            bitstream.raw_bytes[:8192])) == bitstream.raw_bytes[:8192]
        checks.append((f"codec roundtrip: {codec.name}", ok))

    checks.append(("Table II exact",
                   slices_for("urec", "virtex5") == 26
                   and slices_for("decompressor", "virtex6") == 900))

    from repro.units import Frequency
    system = UPaRCSystem(decompressor=None)
    result = system.run(bitstream, frequency=Frequency.from_mhz(362.5))
    checks.append(("UPaRC run verified", result.verified))
    checks.append(("frames configured",
                   result.frames_written == bitstream.frame_count))

    width = max(len(label) for label, _ in checks)
    failures = 0
    for label, ok in checks:
        print(f"{label.ljust(width)}  {'PASS' if ok else 'FAIL'}")
        failures += 0 if ok else 1
    print(f"\n{len(checks) - failures}/{len(checks)} checks passed")
    if failures:
        raise SystemExit(1)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint
    return run_lint(args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep.cli import run_sweep
    return run_sweep(args)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.cli import run_obs
    return run_obs(args)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.sanitize.cli import run_sanitize
    return run_sanitize(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.cli import run_serve
    return run_serve(args)


def _cmd_energy(args: argparse.Namespace) -> None:
    comparison = energy_comparison()
    rows = [
        ["xps_hwicap (unoptimized)", f"{comparison.xps.uj_per_kb:.2f}",
         "30.00", f"{comparison.xps.mean_power_mw:.1f}"],
        ["UPaRC_i @ 100 MHz", f"{comparison.uparc.uj_per_kb:.3f}",
         "0.66", f"{comparison.uparc.mean_power_mw:.1f}"],
    ]
    print(render_table(
        ["Controller", "uJ/KB", "paper", "power mW"], rows,
        title="Section V -- energy efficiency"))
    print(f"\nratio: {comparison.efficiency_ratio:.1f}x (paper: 45x)")


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig5": _cmd_fig5,
    "fig7": _cmd_fig7,
    "energy": _cmd_energy,
    "selftest": _cmd_selftest,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
    "sweep": _cmd_sweep,
    "obs": _cmd_obs,
    "sanitize": _cmd_sanitize,
    "serve": _cmd_serve,
}

#: Commands that accept --trace/--metrics: the run executes inside
#: ``repro.obs.observed(...)``, so every system it constructs picks up
#: the collectors.  (``sweep`` handles --metrics itself — its cells
#: run in worker processes with their own registries.)
_OBSERVABLE = ("table1", "table2", "table3", "fig5", "fig7", "energy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the UPaRC paper's tables and figures.",
    )
    parser.add_argument(
        "--backend", choices=("auto", "pure", "numpy", "native"),
        default=None,
        help="datapath backend (default: auto — native when built, "
             "else numpy when installed, else pure Python; outputs "
             "are byte-identical whichever runs). The REPRO_BACKEND "
             "environment variable sets the same choice with lower "
             "precedence.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        if name == "lint":
            sub = subparsers.add_parser(
                name, help="run the simulation-safety static analyzer "
                           "(exit 0 clean, 1 violations, 2 usage error)")
            from repro.lint.cli import add_lint_arguments
            add_lint_arguments(sub)
            continue
        if name == "sweep":
            sub = subparsers.add_parser(
                name, help="run an experiment grid (process-parallel, "
                           "artifact-cached)")
            from repro.sweep.cli import add_sweep_arguments
            add_sweep_arguments(sub)
            continue
        if name == "obs":
            sub = subparsers.add_parser(
                name, help="summarise a Chrome-trace JSON written "
                           "with --trace")
            from repro.obs.cli import add_obs_arguments
            add_obs_arguments(sub)
            continue
        if name == "sanitize":
            sub = subparsers.add_parser(
                name, help="run scripts under the dynamic race & "
                           "determinism sanitizers (exit 0 clean, "
                           "1 findings, 2 usage error)")
            from repro.sanitize.cli import add_sanitize_arguments
            add_sanitize_arguments(sub)
            continue
        if name == "serve":
            sub = subparsers.add_parser(
                name, help="drive a simulated FPGA fleet against an "
                           "open-loop request stream (run | bench)")
            from repro.serve.cli import add_serve_arguments
            add_serve_arguments(sub)
            continue
        sub = subparsers.add_parser(name, help=f"regenerate {name}")
        if name in _OBSERVABLE:
            sub.add_argument("--trace", default=None, metavar="FILE",
                             help="write a Chrome trace_event JSON of "
                                  "the run (view in Perfetto)")
            sub.add_argument("--metrics", action="store_true",
                             help="collect the metrics registry and "
                                  "print it after the run")
            sub.add_argument("--sanitize", action="store_true",
                             help="run under the dynamic race & "
                                  "determinism sanitizers (implies a "
                                  "seeded re-run; findings fail the "
                                  "command)")
        if name == "table3":
            sub.add_argument("--size-kb", type=float, default=216.5,
                             help="bitstream size (default 216.5)")
        if name == "report":
            sub.add_argument("--output", default=None,
                             help="write Markdown to this file")
        if name == "validate":
            sub.add_argument("--quick", action="store_true",
                             help="smaller workloads, sub-30s gate")
    subparsers.add_parser("all", help="regenerate everything")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Resolve the datapath backend up front (also validates a bad
    # REPRO_BACKEND value) so selection errors are usage errors, not
    # tracebacks from the first kernel call mid-run.
    from repro import accel
    from repro.errors import AccelError
    try:
        accel.select(getattr(args, "backend", None))
    except AccelError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    if args.command == "all":
        for index, (name, command) in enumerate(_COMMANDS.items()):
            if index:
                print()
            if name == "table3":
                command(argparse.Namespace(size_kb=216.5))
            elif name in ("report", "validate", "lint", "sweep", "obs",
                          "sanitize", "serve"):
                continue  # 'all' already prints every table
            else:
                command(args)
        return 0
    command = _COMMANDS[args.command]
    if getattr(args, "sanitize", False) and args.command in _OBSERVABLE:
        from repro.sanitize.cli import run_sanitized_command
        return run_sanitized_command(command, args, args.command)
    trace_file = getattr(args, "trace", None)
    want_metrics = bool(getattr(args, "metrics", False)) \
        and args.command in _OBSERVABLE
    if trace_file or want_metrics:
        from repro import obs
        from repro.analysis.report import render_table
        with obs.observed(trace=bool(trace_file),
                          metrics=want_metrics) as observation:
            result = command(args)
        if want_metrics:
            print()
            print(render_table(
                ["metric", "kind", "value"],
                observation.registry.rows(),
                title=f"metrics -- {args.command}"))
        if trace_file:
            count = obs.write_chrome_trace(observation.tracer,
                                           trace_file)
            print(f"\ntrace: {count} events -> {trace_file}")
        return int(result) if result is not None else 0
    result = command(args)
    return int(result) if result is not None else 0


if __name__ == "__main__":
    sys.exit(main())
