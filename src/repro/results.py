"""Reconfiguration result records (shared by core and controllers).

A :class:`ReconfigurationResult` captures everything Table III,
Fig. 5 and the energy comparison need from one reconfiguration run:
timing decomposition (control overhead vs. transfer), bandwidth in the
paper's decimal MB/s and in binary MB/s, data-integrity verification
(the ICAP-side CRC must match the source bitstream — a reconfiguration
that delivers wrong bits is a failure, not a fast run), and the energy
report when a power model is attached.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReconfigurationFailed
from repro.power.energy import EnergyReport
from repro.sim import ValueTrace
from repro.units import DataSize, Frequency, PS_PER_S


class LargeBitstreamGrade(enum.Enum):
    """Table III's 'Large Bitstream' column (capacity handling)."""

    UNLIMITED = "+++"   # external non-volatile storage
    COMPRESSED = "++"   # on-chip storage stretched by compression
    LIMITED = "-"       # raw on-chip storage only

    def __str__(self) -> str:
        return self.value


@dataclass
class ReconfigurationResult:
    """Outcome and accounting of one reconfiguration."""

    controller: str
    bitstream_size: DataSize        # uncompressed configuration stream
    stored_size: DataSize           # bytes held in the staging store
    mode: str                       # "raw" | "compressed" | storage name
    frequency: Frequency            # the reconfiguration clock
    start_ps: int                   # "Start" assertion time
    finish_ps: int                  # "Finish" assertion time
    control_overhead_ps: int        # manager control contribution
    preload_ps: Optional[int] = None        # off-critical-path preload
    words_delivered: int = 0
    payload_crc: int = 0
    expected_crc: int = 0
    frames_written: int = 0
    power_trace: Optional[ValueTrace] = None
    energy: Optional[EnergyReport] = None

    @property
    def duration_ps(self) -> int:
        """Reconfiguration time: Start to Finish plus control share."""
        return (self.finish_ps - self.start_ps) + self.control_overhead_ps

    @property
    def transfer_ps(self) -> int:
        return self.finish_ps - self.start_ps

    @property
    def verified(self) -> bool:
        """Did ICAP receive exactly the source configuration stream?"""
        return (self.payload_crc == self.expected_crc
                and self.words_delivered > 0)

    @property
    def bandwidth_mbps(self) -> float:
        """Binary MB/s over the full duration (incl. control)."""
        return (self.bitstream_size.bytes / (1024 * 1024)
                * PS_PER_S / self.duration_ps)

    @property
    def bandwidth_decimal_mbps(self) -> float:
        """Decimal MB/s — the unit Table III and Fig. 5 use."""
        return (self.bitstream_size.bytes / 1e6
                * PS_PER_S / self.duration_ps)

    def require_verified(self) -> "ReconfigurationResult":
        if not self.verified:
            raise ReconfigurationFailed(
                f"{self.controller}: ICAP payload CRC mismatch "
                f"({self.payload_crc:#010x} != {self.expected_crc:#010x})"
            )
        return self


def stream_crc(data: bytes) -> int:
    """CRC-32 used to verify ICAP received the exact word stream."""
    return zlib.crc32(data) & 0xFFFFFFFF
