"""Rule registry and checker base class.

Every rule is an :class:`ast.NodeVisitor` subclass registered under a
stable rule id (``U001`` ...).  The registry is what the CLI's
``--select`` filter, the reporters, and the documentation generator
iterate — rules are pluggable: registering a new checker module is all
it takes to extend the analyzer.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import PurePosixPath
from typing import Dict, List, Tuple, Type

from repro.lint.violations import Fix, Violation


class Checker(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set the class attributes and call :meth:`report` from
    their ``visit_*`` methods.  ``exempt_paths`` holds fnmatch globs
    (posix-style, matched against the path suffix) naming files where
    the rule does not apply — e.g. the event kernel itself is allowed
    to fire event handles.
    """

    rule_id: str = ""
    rule_name: str = ""
    rationale: str = ""
    exempt_paths: Tuple[str, ...] = ()
    requires_index = False

    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[Violation] = []

    def report(self, node: ast.AST, message: str,
               fix: Fix = None) -> None:
        self.violations.append(Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            fix=fix,
        ))

    @classmethod
    def applies_to(cls, path: str) -> bool:
        posix = PurePosixPath(path).as_posix()
        return not any(fnmatch(posix, pattern) for pattern in cls.exempt_paths)


class ProjectChecker(Checker):
    """Base class for flow rules that need the whole-program index.

    The analyzer instantiates these with the :class:`ProjectIndex`
    built in pass 1 plus this file's own :class:`ModuleSummary`, so a
    ``visit_Call`` can resolve the callee defined two modules away.
    """

    requires_index = True

    def __init__(self, path: str, index=None, module=None) -> None:
        super().__init__(path)
        self.index = index
        self.module = module


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule_id or not cls.rule_name:
        raise ValueError(f"{cls.__name__} must define rule_id and rule_name")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Checker]]:
    """The registered rules, keyed and iterated in rule-id order."""
    _load_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> Type[Checker]:
    _load_builtin_rules()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule: {rule_id}") from None


def _load_builtin_rules() -> None:
    # Import for registration side effects; deferred so that custom
    # checkers can be registered before or after the built-ins load.
    import repro.lint.rules  # noqa: F401
