"""Unit vocabulary shared by the project-wide (flow) rules.

A *unit token* is a short lowercase string (``"ps"``, ``"hz"``,
``"bytes"``...) inferred from identifier naming conventions — the same
conventions the local U0xx rules enforce.  Tokens group into
*dimensions* (time, frequency, size, ...), so the flow rules can
distinguish a same-dimension conversion bug (milliseconds into a
picosecond parameter) from a cross-dimension confusion (hertz into a
seconds parameter).

Names containing ``_per_`` are rates (``bytes_per_ps``,
``PS_PER_US``) — ratios, not unit-carrying quantities — and never
receive a token.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Marker exempting a name from unit inference (ratios are unitless).
RATE_MARKER = "_per_"

#: Suffix -> unit token, checked longest-first so ``_mhz`` wins
#: over ``_hz`` and ``_ps`` does not swallow ``_mbps``.
SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_mbps", "mbps"),
    ("_cycles", "cycles"),
    ("_bytes", "bytes"),
    ("_words", "words"),
    ("_ghz", "ghz"),
    ("_mhz", "mhz"),
    ("_khz", "khz"),
    ("_hz", "hz"),
    ("_ps", "ps"),
    ("_ns", "ns"),
    ("_us", "us"),
    ("_ms", "ms"),
    ("_kb", "kb"),
    ("_mb", "mb"),
    ("_mw", "mw"),
    ("_uj", "uj"),
    ("_mj", "mj"),
    ("_s", "s"),
)

#: Bare names that *are* a unit (conversion-helper parameters like
#: ``from_mhz(mhz)``, and value-type fields like ``Frequency.hertz``).
EXACT_UNITS: Dict[str, str] = {
    "mhz": "mhz",
    "khz": "khz",
    "ghz": "ghz",
    "hz": "hz",
    "hertz": "hz",
    "kb": "kb",
    "mb": "mb",
    "cycles": "cycles",
    "words": "words",
    "seconds": "s",
}

#: Unit token -> dimension name.
DIMENSIONS: Dict[str, str] = {
    "ps": "time", "ns": "time", "us": "time", "ms": "time", "s": "time",
    "hz": "frequency", "khz": "frequency", "mhz": "frequency",
    "ghz": "frequency",
    "bytes": "size", "words": "size", "kb": "size", "mb": "size",
    "cycles": "cycles",
    "mw": "power",
    "uj": "energy", "mj": "energy",
    "mbps": "bandwidth",
}


def unit_of_name(name: Optional[str]) -> Optional[str]:
    """The unit token a bare identifier carries, or ``None``.

    Exact-token names (``mhz``) are *not* matched here — a local
    variable named ``ms`` is far more likely to shadow the
    ``repro.units.ms`` helper than to hold milliseconds.  Use
    :func:`unit_of_param` / :func:`unit_of_attr` where exact names
    are trustworthy.
    """
    if not name:
        return None
    lowered = name.lower()
    if RATE_MARKER in lowered:
        return None
    for suffix, unit in SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return unit
    return None


def unit_of_param(name: Optional[str]) -> Optional[str]:
    """Unit of a *parameter* name; exact tokens count (``from_mhz(mhz)``)."""
    if not name:
        return None
    lowered = name.lower()
    if RATE_MARKER in lowered:
        return None
    exact = EXACT_UNITS.get(lowered)
    if exact is not None:
        return exact
    return unit_of_name(name)


def unit_of_attr(name: Optional[str]) -> Optional[str]:
    """Unit of an *attribute* name (``freq.hertz``, ``size.bytes``).

    Attributes are declared fields/properties, so exact tokens are
    reliable — plus ``bytes``/``mb`` style property names.
    """
    if not name:
        return None
    lowered = name.lower()
    if lowered in ("bytes", "words", "kb", "mb", "hertz", "mhz"):
        return EXACT_UNITS.get(lowered, lowered)
    return unit_of_param(name)


def dimension_of(unit: Optional[str]) -> Optional[str]:
    if unit is None:
        return None
    return DIMENSIONS.get(unit)


def describe_mismatch(have: str, want: str) -> str:
    """Human phrasing for a unit conflict, dimension-aware."""
    have_dim = dimension_of(have)
    want_dim = dimension_of(want)
    if have_dim == want_dim:
        return (f"same dimension ({have_dim}) but different scale: "
                f"{have} vs {want}; convert explicitly")
    return (f"incompatible dimensions: {have} ({have_dim}) vs "
            f"{want} ({want_dim})")
