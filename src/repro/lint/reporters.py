"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.registry import all_rules
from repro.lint.violations import Violation

#: Version of the JSON report schema; bump on breaking shape changes.
JSON_SCHEMA_VERSION = 1


def format_text(violations: Sequence[Violation], files_checked: int) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = [violation.format() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        count = len(violations)
        noun_v = "violation" if count == 1 else "violations"
        lines.append(f"{count} {noun_v} in {files_checked} {noun} checked")
    else:
        lines.append(f"clean: 0 violations in {files_checked} {noun} checked")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report (stable key order, sorted violations)."""
    by_rule: dict = {}
    for violation in violations:
        by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "violations": [violation.to_dict() for violation in violations],
        "summary": {
            "total": len(violations),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def format_rule_listing() -> str:
    """Human-readable table of every registered rule."""
    lines: List[str] = []
    for rule_id, checker in all_rules().items():
        lines.append(f"{rule_id}  {checker.rule_name}")
        lines.append(f"      {checker.rationale}")
    return "\n".join(lines)
