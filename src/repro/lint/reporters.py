"""Text, JSON and SARIF reporters for lint results."""

from __future__ import annotations

import json
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Sequence

from repro.lint.registry import all_rules
from repro.lint.violations import Violation

#: Version of the JSON report schema; bump on breaking shape changes.
JSON_SCHEMA_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Rules emitted by the driver rather than a registered checker.
_DRIVER_RULES: Dict[str, tuple] = {
    "E999": ("syntax-error", "file does not parse"),
    "W001": ("unused-suppression",
             "line-level disable directive matches no violation"),
    "W002": ("stale-baseline-entry",
             "baseline entry matches no current finding"),
}


def format_text(violations: Sequence[Violation], files_checked: int) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = [violation.format() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        count = len(violations)
        noun_v = "violation" if count == 1 else "violations"
        lines.append(f"{count} {noun_v} in {files_checked} {noun} checked")
    else:
        lines.append(f"clean: 0 violations in {files_checked} {noun} checked")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report (stable key order, sorted violations)."""
    by_rule: dict = {}
    for violation in violations:
        by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "violations": [violation.to_dict() for violation in violations],
        "summary": {
            "total": len(violations),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def format_sarif(violations: Sequence[Violation],
                 files_checked: int,
                 extra_rules: Optional[Dict[str, tuple]] = None,
                 tool_name: str = "repro.lint") -> str:
    """SARIF 2.1.0 report — what CI uploads for inline PR annotation.

    Deterministic: rules sorted by id, results in violation order,
    keys sorted, paths posix-normalized.  ``extra_rules`` maps rule
    ids to ``(name, shortDescription)`` for rules that live outside
    the lint registry — the dynamic S9xx sanitizer rules report
    through the same SARIF surface with their own ``tool_name``.
    """
    from repro.lint.analyzer import ANALYZER_VERSION

    rule_ids = sorted({violation.rule_id for violation in violations})
    rules = []
    registry = all_rules()
    for rule_id in rule_ids:
        if extra_rules is not None and rule_id in extra_rules:
            name, text = extra_rules[rule_id]
        elif rule_id in registry:
            checker = registry[rule_id]
            name, text = checker.rule_name, checker.rationale
        else:
            name, text = _DRIVER_RULES.get(rule_id, (rule_id, rule_id))
        rules.append({
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": text},
        })

    results = []
    for violation in violations:
        result = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": PurePosixPath(violation.path).as_posix(),
                    },
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        }
        if violation.fix is not None:
            result["fixes"] = [_sarif_fix(violation)]
        results.append(result)

    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": ANALYZER_VERSION,
                    "rules": rules,
                },
            },
            "results": results,
            "properties": {"filesChecked": files_checked},
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_fix(violation: Violation) -> dict:
    """SARIF 2.1.0 ``fix`` object: one artifactChange per violation."""
    replacements = []
    for edit in violation.fix.edits:
        replacements.append({
            "deletedRegion": {
                "startLine": edit.line,
                "startColumn": edit.col + 1,
                "endLine": edit.end_line,
                "endColumn": edit.end_col + 1,
            },
            "insertedContent": {"text": edit.text},
        })
    return {
        "description": {"text": violation.fix.description},
        "artifactChanges": [{
            "artifactLocation": {
                "uri": PurePosixPath(violation.path).as_posix(),
            },
            "replacements": replacements,
        }],
    }


def format_rule_listing() -> str:
    """Human-readable table of every registered rule."""
    lines: List[str] = []
    for rule_id, checker in all_rules().items():
        lines.append(f"{rule_id}  {checker.rule_name}")
        lines.append(f"      {checker.rationale}")
    return "\n".join(lines)
