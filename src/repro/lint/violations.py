"""Violation record produced by the simulation-safety analyzer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location.

    Ordering is (path, line, col, rule_id) so reports are stable
    regardless of checker execution order — the analyzer itself must
    honor the determinism discipline it enforces.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
