"""Violation and autofix records produced by the analyzer.

:class:`Edit` and :class:`Fix` are plain data on purpose: a fix is a
*description* of a mechanically safe text change, not code that
performs it — the application engine (:mod:`repro.lint.fix`) stays in
one place, fixes round-trip through the JSON result cache, and the
SARIF reporter can translate them into ``fixes`` objects for editors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Edit:
    """One contiguous text replacement.

    Positions follow the AST convention: 1-based lines, 0-based
    columns.  A zero-width span (``start == end``) is an insertion;
    an empty ``text`` over a non-empty span is a deletion.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    text: str

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
            "text": self.text,
        }

    @staticmethod
    def from_dict(data: dict) -> "Edit":
        return Edit(line=data["line"], col=data["col"],
                    end_line=data["end_line"], end_col=data["end_col"],
                    text=data["text"])


@dataclass(frozen=True)
class Fix:
    """A mechanically safe repair: one or more edits in one file."""

    description: str
    edits: Tuple[Edit, ...]

    def to_dict(self) -> dict:
        return {
            "description": self.description,
            "edits": [edit.to_dict() for edit in self.edits],
        }

    @staticmethod
    def from_dict(data: dict) -> "Fix":
        return Fix(description=data["description"],
                   edits=tuple(Edit.from_dict(e) for e in data["edits"]))


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location.

    Ordering is (path, line, col, rule_id) so reports are stable
    regardless of checker execution order — the analyzer itself must
    honor the determinism discipline it enforces.  The optional
    ``fix`` rides along without participating in identity: two runs
    that disagree only about fixability still dedupe and baseline the
    same way.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fix: Optional[Fix] = field(default=None, compare=False)

    def format(self) -> str:
        suffix = " [fixable]" if self.fix is not None else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}{suffix}")

    def to_dict(self) -> dict:
        data = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
        if self.fix is not None:
            data["fix"] = self.fix.to_dict()
        return data

    @staticmethod
    def from_dict(data: dict) -> "Violation":
        fix = data.get("fix")
        return Violation(
            path=data["path"],
            line=data["line"],
            col=data["col"],
            rule_id=data["rule"],
            message=data["message"],
            fix=Fix.from_dict(fix) if fix is not None else None,
        )
