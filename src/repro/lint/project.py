"""Project index: import graph, call resolution, unit fixed point.

Pass 1 (:mod:`repro.lint.summaries`) reduces every file to a
:class:`ModuleSummary`; this module stitches those into one
:class:`ProjectIndex` the flow rules query:

* ``resolve(module, call_name, enclosing_class)`` — map a call
  expression to the :class:`FunctionSummary` it invokes, through
  import aliases, local definitions, ``self.`` receivers, and (as a
  last resort) a project-wide unique-name match.  Ambiguity resolves
  to ``None`` — the flow rules stay silent rather than guess.
* ``return_unit(qualname)`` — the unit token a function's return
  value carries, propagated through the call graph to a fixed point
  (``def total(): return self.wait_ps()`` inherits ``ps``).

The index also exposes a deterministic :meth:`signature` — the
SHA-256 of every module's summary — which keys the incremental
result cache: per-file findings stay valid exactly as long as no
summary anywhere changed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.lint.summaries import FunctionSummary, ModuleSummary

#: Method names too generic for the unique-name fallback; resolving
#: ``obj.update(...)`` to *the one function named update* would be a
#: guess, not an inference.
GENERIC_NAMES = frozenset({
    "update", "get", "put", "add", "run", "append", "extend", "pop",
    "read", "write", "close", "open", "copy", "clear", "items",
    "keys", "values", "join", "split", "format", "encode", "decode",
    "sort", "reverse", "count", "index", "insert", "remove", "next",
    "send", "result", "submit", "map", "main", "visit", "report",
})

#: Propagation rounds; call chains deeper than this stay unknown.
MAX_PROPAGATION_ROUNDS = 10


class ProjectIndex:
    """Cross-module lookup tables built from per-module summaries."""

    def __init__(self, modules: List[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.by_path: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self._by_name: Dict[str, List[str]] = {}
        for summary in sorted(modules, key=lambda m: m.module):
            self.modules[summary.module] = summary
            self.by_path[summary.path] = summary
            for qualname, function in summary.functions.items():
                self.functions[qualname] = function
                self._by_name.setdefault(function.name, []).append(qualname)
        self._return_units = self._propagate_return_units()

    # -- call resolution ----------------------------------------------

    def resolve(self, module: Optional[ModuleSummary],
                call_name: Optional[str],
                enclosing_class: Optional[str] = None,
                ) -> Optional[FunctionSummary]:
        """The summary a dotted call name denotes, or ``None``."""
        if not call_name:
            return None
        parts = call_name.split(".")

        if module is not None:
            if parts[0] == "self" and enclosing_class and len(parts) == 2:
                qualname = f"{module.module}.{enclosing_class}.{parts[1]}"
                if qualname in self.functions:
                    return self.functions[qualname]

            target = module.imports.get(parts[0])
            if target is not None:
                qualname = ".".join([target, *parts[1:]])
                if qualname in self.functions:
                    return self.functions[qualname]
                # ``from x import Cls`` + ``Cls.method`` resolves the
                # classmethod through the imported class qualname.

            qualname = f"{module.module}.{call_name}"
            if qualname in self.functions:
                return self.functions[qualname]

        # Unique-name fallback: sound only when exactly one function
        # in the whole project bears the terminal name.
        terminal = parts[-1]
        if terminal in GENERIC_NAMES or terminal.startswith("__"):
            return None
        candidates = self._by_name.get(terminal, [])
        if len(candidates) == 1:
            return self.functions[candidates[0]]
        return None

    # -- return units -------------------------------------------------

    def return_unit(self, qualname: str) -> Optional[str]:
        return self._return_units.get(qualname)

    def return_unit_of(self, summary: Optional[FunctionSummary]
                       ) -> Optional[str]:
        if summary is None:
            return None
        return self._return_units.get(summary.qualname)

    def _propagate_return_units(self) -> Dict[str, Optional[str]]:
        units: Dict[str, Optional[str]] = {}
        for _ in range(MAX_PROPAGATION_ROUNDS):
            changed = False
            for summary in self.modules.values():
                for qualname, function in summary.functions.items():
                    unit = self._combine_returns(summary, function, units)
                    if units.get(qualname) != unit:
                        units[qualname] = unit
                        changed = True
            if not changed:
                break
        return units

    def _combine_returns(self, module: ModuleSummary,
                         function: FunctionSummary,
                         units: Dict[str, Optional[str]],
                         ) -> Optional[str]:
        seen: set = set()
        for kind, value in function.returns:
            if kind == "const":
                continue  # a literal 0 fallback does not veto a unit
            if kind == "unit":
                seen.add(value)
            elif kind == "call":
                callee = self.resolve(module, value)
                if callee is None or callee.qualname == function.qualname:
                    return None
                resolved = units.get(callee.qualname)
                if resolved is None:
                    return None
                seen.add(resolved)
            else:
                return None
        if len(seen) == 1:
            return seen.pop()
        return None

    # -- identity -----------------------------------------------------

    def signature(self) -> str:
        """SHA-256 over every module summary, in module order."""
        digest = hashlib.sha256()
        for module in sorted(self.modules):
            digest.update(module.encode("utf-8"))
            digest.update(summary_digest(self.modules[module])
                          .encode("utf-8"))
        return digest.hexdigest()


def summary_digest(summary: ModuleSummary) -> str:
    """Stable content hash of one module summary."""
    canonical = json.dumps(summary.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    Walks up while parent directories are packages (contain
    ``__init__.py``), so ``src/repro/sim/kernel.py`` maps to
    ``repro.sim.kernel`` regardless of the ``src`` prefix.  Files
    outside any package use their stem.
    """
    import os

    head, tail = os.path.split(os.path.abspath(path))
    stem = tail[:-3] if tail.endswith(".py") else tail
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(head, "__init__.py")):
        head, tail = os.path.split(head)
        parts.insert(0, tail)
    return ".".join(parts) if parts else stem


def build_index(summaries: List[ModuleSummary]) -> ProjectIndex:
    return ProjectIndex(summaries)
