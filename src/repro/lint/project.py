"""Project index: import graph, call resolution, unit fixed point.

Pass 1 (:mod:`repro.lint.summaries`) reduces every file to a
:class:`ModuleSummary`; this module stitches those into one
:class:`ProjectIndex` the flow rules query:

* ``resolve(module, call_name, enclosing_class)`` — map a call
  expression to the :class:`FunctionSummary` it invokes, through
  import aliases, local definitions, ``self.`` receivers, and (as a
  last resort) a project-wide unique-name match.  Ambiguity resolves
  to ``None`` — the flow rules stay silent rather than guess.
* ``return_unit(qualname)`` — the unit token a function's return
  value carries, propagated through the call graph to a fixed point
  (``def total(): return self.wait_ps()`` inherits ``ps``).

The index also exposes a deterministic :meth:`signature` — the
SHA-256 of every module's summary — which keys the incremental
result cache: per-file findings stay valid exactly as long as no
summary anywhere changed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.lint.effects import (FREE, PARAM, SELF, SYNC_CLASSES,
                                ResolvedEffects, split_root)
from repro.lint.summaries import FunctionSummary, ModuleSummary

#: Method names too generic for the unique-name fallback; resolving
#: ``obj.update(...)`` to *the one function named update* would be a
#: guess, not an inference.
GENERIC_NAMES = frozenset({
    "update", "get", "put", "add", "run", "append", "extend", "pop",
    "read", "write", "close", "open", "copy", "clear", "items",
    "keys", "values", "join", "split", "format", "encode", "decode",
    "sort", "reverse", "count", "index", "insert", "remove", "next",
    "send", "result", "submit", "map", "main", "visit", "report",
})

#: Propagation rounds; call chains deeper than this stay unknown.
MAX_PROPAGATION_ROUNDS = 10


class ProjectIndex:
    """Cross-module lookup tables built from per-module summaries."""

    def __init__(self, modules: List[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.by_path: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self._by_name: Dict[str, List[str]] = {}
        for summary in sorted(modules, key=lambda m: m.module):
            self.modules[summary.module] = summary
            self.by_path[summary.path] = summary
            for qualname, function in summary.functions.items():
                self.functions[qualname] = function
                self._by_name.setdefault(function.name, []).append(qualname)
        self._return_units = self._propagate_return_units()
        self._effects = self._propagate_effects()

    # -- call resolution ----------------------------------------------

    def resolve(self, module: Optional[ModuleSummary],
                call_name: Optional[str],
                enclosing_class: Optional[str] = None,
                ) -> Optional[FunctionSummary]:
        """The summary a dotted call name denotes, or ``None``."""
        if not call_name:
            return None
        parts = call_name.split(".")

        if module is not None:
            if parts[0] == "self" and enclosing_class and len(parts) == 2:
                qualname = f"{module.module}.{enclosing_class}.{parts[1]}"
                if qualname in self.functions:
                    return self.functions[qualname]

            target = module.imports.get(parts[0])
            if target is not None:
                qualname = ".".join([target, *parts[1:]])
                if qualname in self.functions:
                    return self.functions[qualname]
                # ``from x import Cls`` + ``Cls.method`` resolves the
                # classmethod through the imported class qualname.

            qualname = f"{module.module}.{call_name}"
            if qualname in self.functions:
                return self.functions[qualname]

        # Unique-name fallback: sound only when exactly one function
        # in the whole project bears the terminal name.
        terminal = parts[-1]
        if terminal in GENERIC_NAMES or terminal.startswith("__"):
            return None
        candidates = self._by_name.get(terminal, [])
        if len(candidates) == 1:
            return self.functions[candidates[0]]
        return None

    # -- return units -------------------------------------------------

    def return_unit(self, qualname: str) -> Optional[str]:
        return self._return_units.get(qualname)

    def return_unit_of(self, summary: Optional[FunctionSummary]
                       ) -> Optional[str]:
        if summary is None:
            return None
        return self._return_units.get(summary.qualname)

    def _propagate_return_units(self) -> Dict[str, Optional[str]]:
        units: Dict[str, Optional[str]] = {}
        for _ in range(MAX_PROPAGATION_ROUNDS):
            changed = False
            for summary in self.modules.values():
                for qualname, function in summary.functions.items():
                    unit = self._combine_returns(summary, function, units)
                    if units.get(qualname) != unit:
                        units[qualname] = unit
                        changed = True
            if not changed:
                break
        return units

    def _combine_returns(self, module: ModuleSummary,
                         function: FunctionSummary,
                         units: Dict[str, Optional[str]],
                         ) -> Optional[str]:
        seen: set = set()
        for kind, value in function.returns:
            if kind == "const":
                continue  # a literal 0 fallback does not veto a unit
            if kind == "unit":
                seen.add(value)
            elif kind == "call":
                callee = self.resolve(module, value)
                if callee is None or callee.qualname == function.qualname:
                    return None
                resolved = units.get(callee.qualname)
                if resolved is None:
                    return None
                seen.add(resolved)
            else:
                return None
        if len(seen) == 1:
            return seen.pop()
        return None

    # -- effects ------------------------------------------------------

    def effects(self, summary: Optional[FunctionSummary]
                ) -> ResolvedEffects:
        """Call-graph-propagated effects of one function.

        Always returns an object; an unknown function has no known
        effects, which is the sound default for every consumer (a rule
        that cannot prove a mutation stays silent).
        """
        if summary is None:
            return ResolvedEffects()
        return self._effects.get(summary.qualname) or ResolvedEffects()

    def qualify_mutable_global(self, module: ModuleSummary,
                               name: str) -> Optional[str]:
        """Absolute ``module.name`` of a free name, if it is mutable state.

        Imported names resolve to the binding's owning module; either
        way the name must appear in its owner's ``mutable_globals`` —
        reading a constant or calling an imported function is not a
        shared-state access.
        """
        target = module.imports.get(name)
        if target is None:
            if name in module.mutable_globals:
                return f"{module.module}.{name}"
            return None
        owner_mod, _, owner_name = target.rpartition(".")
        owner = self.modules.get(owner_mod)
        if owner is not None and owner_name in owner.mutable_globals:
            return target
        return None

    def _enclosing_class(self, module: ModuleSummary,
                         function: FunctionSummary) -> Optional[str]:
        if function.kind not in ("method", "classmethod"):
            return None
        relative = function.qualname[len(module.module) + 1:]
        parts = relative.split(".")
        return parts[-2] if len(parts) >= 2 else None

    def _initial_effects(self, module: ModuleSummary,
                         function: FunctionSummary) -> ResolvedEffects:
        eff = ResolvedEffects()
        # Self effects of synchronization primitives (Event.trigger,
        # Signal drives) are the ordering mechanism itself — dropping
        # them here keeps every downstream consumer from reporting a
        # correctly synchronized handshake as a race.
        sync = self._enclosing_class(module, function) in SYNC_CLASSES
        for root in function.effects.mutates:
            if sync and split_root(root)[0] == SELF:
                continue
            self._apply_mutation(module, eff, root)
        for root in function.effects.memo_fills:
            qualified = self.qualify_mutable_global(module,
                                                    split_root(root)[1])
            if qualified is not None:
                eff.memo_globals.add(qualified)
        if not sync:
            eff.self_reads.update(function.effects.self_reads)
        eff.escaped_params.update(function.effects.escapes)
        for name in function.global_reads:
            qualified = self.qualify_mutable_global(module, name)
            if qualified is not None:
                eff.global_reads.add(qualified)
        return eff

    def _apply_mutation(self, module: ModuleSummary,
                        eff: ResolvedEffects, root: str) -> None:
        tag, name = split_root(root)
        if tag == PARAM:
            eff.mutated_params.add(name)
        elif tag == SELF:
            eff.mutated_self.add(name)
        elif tag == FREE:
            qualified = self.qualify_mutable_global(module, name)
            if qualified is not None:
                eff.mutated_globals.add(qualified)

    def _propagate_effects(self) -> Dict[str, ResolvedEffects]:
        """Fixed point of effect translation through call edges.

        Runs alongside (after) unit propagation: a caller inherits a
        callee's global effects verbatim, and its parameter/receiver
        effects translated back through the argument binding recorded
        on the :class:`~repro.lint.effects.CallEdge`.  All transfer
        functions are monotone over finite sets, so the rounds cap is
        a depth bound, not a correctness hazard.
        """
        effects: Dict[str, ResolvedEffects] = {}
        for module in self.modules.values():
            for qualname, function in module.functions.items():
                effects[qualname] = self._initial_effects(module, function)
        for _ in range(MAX_PROPAGATION_ROUNDS):
            changed = False
            for module in self.modules.values():
                for qualname, function in module.functions.items():
                    eff = effects[qualname]
                    before = eff.snapshot()
                    enclosing = self._enclosing_class(module, function)
                    for edge in function.effects.calls:
                        callee = self.resolve(module, edge.name, enclosing)
                        if callee is None or callee.qualname == qualname:
                            continue
                        callee_eff = effects.get(callee.qualname)
                        if callee_eff is None:
                            continue
                        self._translate_call(module, eff, edge,
                                             callee, callee_eff)
                    if eff.snapshot() != before:
                        changed = True
            if not changed:
                break
        return effects

    def _translate_call(self, module: ModuleSummary, eff: ResolvedEffects,
                        edge, callee: FunctionSummary,
                        callee_eff: ResolvedEffects) -> None:
        eff.mutated_globals.update(callee_eff.mutated_globals)
        eff.memo_globals.update(callee_eff.memo_globals)
        eff.global_reads.update(callee_eff.global_reads)

        if callee_eff.mutated_self and edge.receiver is not None:
            if edge.receiver == "self":
                eff.mutated_self.update(callee_eff.mutated_self)
            else:
                self._apply_mutation(module, eff, edge.receiver)
        if edge.receiver == "self":
            eff.self_reads.update(callee_eff.self_reads)

        params = (callee.explicit_params if edge.receiver is not None
                  else callee.params)
        for position, root in enumerate(edge.args):
            if root is None or position >= len(params):
                continue
            name = params[position].name
            if name in callee_eff.mutated_params:
                self._apply_mutation(module, eff, root)
            if name in callee_eff.escaped_params:
                tag, root_name = split_root(root)
                if tag == PARAM:
                    eff.escaped_params.add(root_name)

    # -- identity -----------------------------------------------------

    def signature(self) -> str:
        """SHA-256 over every module summary, in module order."""
        digest = hashlib.sha256()
        for module in sorted(self.modules):
            digest.update(module.encode("utf-8"))
            digest.update(summary_digest(self.modules[module])
                          .encode("utf-8"))
        return digest.hexdigest()


def summary_digest(summary: ModuleSummary) -> str:
    """Stable content hash of one module summary."""
    canonical = json.dumps(summary.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    Walks up while parent directories are packages (contain
    ``__init__.py``), so ``src/repro/sim/kernel.py`` maps to
    ``repro.sim.kernel`` regardless of the ``src`` prefix.  Files
    outside any package use their stem.
    """
    import os

    head, tail = os.path.split(os.path.abspath(path))
    stem = tail[:-3] if tail.endswith(".py") else tail
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(head, "__init__.py")):
        head, tail = os.path.split(head)
        parts.insert(0, tail)
    return ".".join(parts) if parts else stem


def build_index(summaries: List[ModuleSummary]) -> ProjectIndex:
    return ProjectIndex(summaries)
