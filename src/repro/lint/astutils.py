"""Small AST helpers shared by the summaries, dataflow and rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

#: Calls that convert to integer; a float literal inside one of these
#: is an explicit, rounded conversion rather than a unit leak.  Any
#: *other* call is treated as opaque too — its return type is unknown
#: statically, and a float literal among its arguments (``mhz(362.5)``)
#: says nothing about the value the call produces.
INT_COERCIONS = ("int", "round", "floor", "ceil", "us", "ms", "ns",
                 "ceil_div")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a Name or Attribute (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def name_has_suffix(node: ast.AST, suffixes: Tuple[str, ...]) -> bool:
    name = terminal_name(node)
    return name is not None and name.lower().endswith(suffixes)


def is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def iter_float_leaks(node: ast.AST) -> Iterator[ast.AST]:
    """Float literals / true divisions in ``node``, outside calls.

    Call subtrees are pruned: ``int(cycles * 1.5)`` is an explicit
    rounding decision and ``clock.duration_of(cycles)`` returns whatever
    it returns — but a bare ``cycles * 1.5`` reaching a picosecond
    parameter silently truncates or (worse) stays float and breaks
    heap-order totality.
    """
    if isinstance(node, ast.Call):
        return
    if is_float_literal(node):
        yield node
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        yield node
        return
    for child in ast.iter_child_nodes(node):
        yield from iter_float_leaks(child)


def is_int_annotation(node: ast.AST) -> bool:
    """True for ``int``, ``Optional[int]``, ``int | None`` (either order)."""
    if isinstance(node, ast.Name):
        return node.id == "int"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.replace(" ", "") in ("int", "Optional[int]",
                                               "int|None", "None|int")
    if isinstance(node, ast.Subscript):
        base = terminal_name(node.value)
        if base == "Optional":
            return is_int_annotation(node.slice)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        sides = (node.left, node.right)
        has_none = any(isinstance(s, ast.Constant) and s.value is None
                       for s in sides)
        has_int = any(is_int_annotation(s) for s in sides)
        return has_none and has_int
    return False
