"""``python -m repro lint`` subcommand.

Exit codes follow the usual linter convention:

* ``0`` — all checked files are clean.
* ``1`` — at least one violation was reported.
* ``2`` — usage error (missing path, unknown rule id).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.lint.analyzer import collect_files, lint_file
from repro.lint.registry import all_rules
from repro.lint.reporters import format_json, format_rule_listing, format_text

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(format_rule_listing())
        return EXIT_CLEAN

    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",")
                  if rule.strip()]
        known = all_rules()
        unknown = [rule for rule in select if rule not in known]
        if unknown:
            print(f"repro lint: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return EXIT_USAGE

    for raw in args.paths:
        if not Path(raw).exists():
            print(f"repro lint: no such file or directory: {raw}",
                  file=sys.stderr)
            return EXIT_USAGE

    files = collect_files(args.paths)
    violations = []
    for path in files:
        violations.extend(lint_file(path, select=select))
    violations.sort()

    formatter = format_json if args.format == "json" else format_text
    print(formatter(violations, files_checked=len(files)))
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the simulation-safety static analyzer.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
