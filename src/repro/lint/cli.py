"""``python -m repro lint`` subcommand.

Exit codes follow the usual linter convention:

* ``0`` — all checked files are clean (modulo the baseline).
* ``1`` — at least one violation was reported.
* ``2`` — usage error (missing path, no Python files found, unknown
  rule id, malformed baseline).

The incremental cache is on by default (``.repro-lint-cache/``;
disable with ``--no-cache``).  If ``.repro-lint-baseline.json``
exists in the working directory it is applied automatically —
``--baseline`` names a different file, ``--no-baseline`` ignores it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.lint.analyzer import collect_files, lint_files
from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    apply_baseline,
    load_baseline,
    normalize_path,
    write_baseline,
)
from repro.lint.cache import LintCache
from repro.lint.fix import plan_fixes, write_changes
from repro.lint.registry import all_rules
from repro.lint.reporters import (
    format_json,
    format_rule_listing,
    format_sarif,
    format_text,
)

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2

DEFAULT_CACHE_DIR = ".repro-lint-cache"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--sarif", default=None, metavar="FILE",
                        help="additionally write a SARIF 2.1.0 report "
                             "to FILE")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help=f"baseline of known findings (default: "
                             f"{DEFAULT_BASELINE_NAME} if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"incremental cache directory (default: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental analysis cache")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanically safe fixes, then "
                             "re-lint and report what remains")
    parser.add_argument("--show-fixes", action="store_true",
                        help="preview auto-fixes as unified diffs "
                             "without writing anything")


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(format_rule_listing())
        return EXIT_CLEAN

    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",")
                  if rule.strip()]
        known = all_rules()
        unknown = [rule for rule in select if rule not in known]
        if unknown:
            print(f"repro lint: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return EXIT_USAGE

    for raw in args.paths:
        if not Path(raw).exists():
            print(f"repro lint: no such file or directory: {raw}",
                  file=sys.stderr)
            return EXIT_USAGE

    files = collect_files(args.paths)
    if not files:
        print(f"repro lint: no Python files found under: "
              f"{', '.join(args.paths)}", file=sys.stderr)
        return EXIT_USAGE

    cache = None if args.no_cache else LintCache(args.cache_dir)
    violations = lint_files(files, select=select, cache=cache)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and Path(DEFAULT_BASELINE_NAME).is_file():
        baseline_path = DEFAULT_BASELINE_NAME

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        count = write_baseline(target, violations)
        print(f"baseline written to {target}: {count} entries "
              f"({len(violations)} findings); add a justification "
              f"to each entry")
        return EXIT_CLEAN

    def filter_through_baseline(found):
        if baseline_path is None or args.no_baseline:
            return found
        entries = load_baseline(baseline_path)
        return apply_baseline(
            found, entries, baseline_path,
            checked_paths={normalize_path(str(f)) for f in files},
            checked_rules=set(select) if select is not None else None)

    try:
        violations = filter_through_baseline(violations)
    except BaselineError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    # Fixes operate strictly on post-baseline findings: a baselined
    # idiom is a documented decision, not something to rewrite.
    if args.fix or args.show_fixes:
        plan = plan_fixes(violations)
        if args.show_fixes and plan.changes:
            print(plan.render_diffs())
        if plan.changes:
            noun = "file" if len(plan.changes) == 1 else "files"
            print(f"{plan.applied_count} auto-fixable violation(s) "
                  f"in {len(plan.changes)} {noun}"
                  + (f"; {plan.skipped_count} skipped (conflicting "
                     f"edits)" if plan.skipped_count else ""))
        if args.fix and plan.changes:
            write_changes(plan)
            print(f"applied {plan.applied_count} fix(es); re-linting")
            violations = filter_through_baseline(
                lint_files(files, select=select, cache=cache))

    if args.format == "json":
        formatter = format_json
    elif args.format == "sarif":
        formatter = format_sarif
    else:
        formatter = format_text
    print(formatter(violations, files_checked=len(files)))

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(format_sarif(violations,
                                      files_checked=len(files)))
            handle.write("\n")
        print(f"SARIF report written to {args.sarif}", file=sys.stderr)

    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the simulation-safety static analyzer.",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
