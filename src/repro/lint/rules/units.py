"""Unit-discipline rules (U0xx).

The kernel counts time in integer picoseconds and frequencies flow
through :class:`repro.units.Frequency`; these rules keep raw floats
from leaking into either representation.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Checker, register
from repro.lint.astutils import (
    is_int_annotation,
    iter_float_leaks,
    name_has_suffix,
    terminal_name,
)

#: Identifier suffixes that denote integer-typed physical quantities.
INT_UNIT_SUFFIXES = ("_ps", "_hz", "_bytes")

#: Names containing this are *rates* (``bytes_per_ps``,
#: ``uj_per_kb``) — ratios are float by nature, not unit-suffixed
#: integers, so the U001 discipline does not apply to them.
RATE_MARKER = "_per_"

#: Frequency-ish identifier suffixes for the raw-arithmetic rule.
FREQUENCY_SUFFIXES = ("_hz", "mhz", "khz", "ghz")

#: Unit-conversion magnitudes whose inline use marks hand-rolled
#: frequency math (1e3 kHz, 1e6 MHz, 1e9 GHz scaling).
CONVERSION_CONSTANTS = (1e3, 1e6, 1e9)

#: Methods whose first positional argument is a picosecond time/delay.
TIME_METHODS = ("at", "after")


@register
class UnitSuffixIntRule(Checker):
    """U001 — ``*_ps`` / ``*_hz`` / ``*_bytes`` must be annotated ``int``.

    The DCM ``F_in * M / D`` synthesis and the event heap both rely on
    exact integer arithmetic; a float-typed picosecond or hertz value
    reintroduces rounding drift the unit types were built to remove.
    """

    rule_id = "U001"
    rule_name = "unit-suffix-int"
    rationale = ("integer picoseconds/hertz/bytes keep DCM synthesis and "
                 "event ordering exact; float-typed unit fields drift")

    @staticmethod
    def _suffix_applies(name: str) -> bool:
        lowered = name.lower()
        return (lowered.endswith(INT_UNIT_SUFFIXES)
                and RATE_MARKER not in lowered)

    def _check_annotation(self, node: ast.AST, name: str,
                          annotation: ast.AST | None) -> None:
        if not self._suffix_applies(name):
            return
        # ``*_bytes`` may also be a raw payload blob (``file_bytes:
        # bytes``); only float-typed counts are unit leaks.
        if (name.lower().endswith("_bytes")
                and isinstance(annotation, ast.Name)
                and annotation.id == "bytes"):
            return
        if annotation is None:
            self.report(node, f"{name!r} carries an integer unit suffix "
                              f"but has no annotation; annotate it as int")
        elif not is_int_annotation(annotation):
            rendered = ast.unparse(annotation)
            self.report(node, f"{name!r} carries an integer unit suffix "
                              f"but is annotated {rendered!r}; use int")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def _check_args(self, node: ast.AST) -> None:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self._check_annotation(arg, arg.arg, arg.annotation)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = terminal_name(node.target)
        if name is not None:
            self._check_annotation(node, name, node.annotation)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            name = terminal_name(target)
            if name is None or not self._suffix_applies(name):
                continue
            for leak in iter_float_leaks(node.value):
                self.report(leak, f"float expression assigned to integer "
                                  f"unit value {name!r}; convert with "
                                  f"round()/int() or repro.units helpers")
        self.generic_visit(node)


@register
class FloatTimeArgRule(Checker):
    """U002 — no float expressions into picosecond time parameters.

    ``Simulator.at``/``after`` compare and heap-order timestamps; a
    float argument makes event ordering depend on representation error
    instead of the total (time, sequence) order.
    """

    rule_id = "U002"
    rule_name = "float-time-arg"
    rationale = ("Simulator.at/after and *_ps parameters are integer "
                 "picoseconds; float arguments corrupt event ordering")

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in TIME_METHODS and node.args):
            self._check_value(node.args[0], f"{node.func.attr}()")
        for keyword in node.keywords:
            if (keyword.arg and keyword.arg.lower().endswith("_ps")
                    and RATE_MARKER not in keyword.arg.lower()):
                self._check_value(keyword.value, f"{keyword.arg}=")
        self.generic_visit(node)

    def _check_value(self, value: ast.AST, where: str) -> None:
        for leak in iter_float_leaks(value):
            self.report(leak, f"float expression passed to picosecond "
                              f"parameter {where}; convert with round()/"
                              f"int() or repro.units.us/ms/ns")


@register
class RawFrequencyMathRule(Checker):
    """U003 — no hand-rolled MHz/kHz scaling outside ``repro.units``.

    Multiplying a frequency-named value by 1e6 re-derives what
    ``Frequency.from_mhz``/``.mhz`` already define once, exactly;
    scattered copies are where unit mistakes (MHz-vs-Hz, binary-vs-
    decimal) historically creep in.
    """

    rule_id = "U003"
    rule_name = "raw-frequency-math"
    rationale = ("frequency conversions belong in repro.units.Frequency; "
                 "inline 1e6 scaling invites MHz/Hz mixups")
    exempt_paths = ("*/repro/units.py",)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Mult, ast.Div)):
            for side, other in ((node.left, node.right),
                                (node.right, node.left)):
                if (name_has_suffix(side, FREQUENCY_SUFFIXES)
                        and self._is_conversion_constant(other)):
                    name = terminal_name(side)
                    self.report(node, f"raw unit conversion on frequency "
                                      f"value {name!r}; use repro.units."
                                      f"Frequency (from_mhz/.mhz/.scaled)")
                    break
        self.generic_visit(node)

    @staticmethod
    def _is_conversion_constant(node: ast.AST) -> bool:
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and not isinstance(node.value, bool)
                and float(node.value) in CONVERSION_CONSTANTS)
