"""Cache-key purity rules (C5xx).

Everything hashed into a SHA-256 artifact key must be *canonical*
(``json.dumps(..., sort_keys=True)``, never ``str()``/``repr()``/
f-strings of live objects) and *versioned* (a format-version entry in
the params dict), or cached artifacts are either missed (key drifts
for equal inputs) or misread (a layout change lands on an old key).
These rules track hash inputs locally — through intermediate
variables — inside each function.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.fix import append_argument_fix
from repro.lint.registry import ProjectChecker, register
from repro.lint.astutils import dotted_name, terminal_name

#: Constructors of hashlib digest objects, plus the project's own
#: canonical key helper.
HASH_CONSTRUCTORS = ("sha256", "sha1", "sha224", "sha384", "sha512",
                     "md5", "blake2b", "blake2s")

KEY_HELPERS = ("artifact_key",)

#: Substring a params-dict key must contain to count as a version pin.
VERSION_MARKER = "version"


def _scope_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``node`` that belong to its own scope.

    Stops at nested function boundaries (their bodies are checked by
    their own ``check_function`` pass), so no node is judged twice.
    Class bodies are *not* boundaries: statements there execute in the
    enclosing scope's pass, while methods get their own.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(child))


def _hash_inputs(node: ast.AST) -> Iterator[ast.AST]:
    """Expressions that contribute bytes to a digest inside ``node``.

    Yields the arguments of ``hashlib.sha256(...)`` constructor calls
    and of ``<digest>.update(...)`` calls where the receiver was
    assigned from a hashlib constructor in the same scope.
    """
    digest_vars: Set[str] = set()
    for child in _scope_nodes(node):
        if isinstance(child, ast.Assign) \
                and isinstance(child.value, ast.Call) \
                and terminal_name(child.value.func) in HASH_CONSTRUCTORS:
            for target in child.targets:
                if isinstance(target, ast.Name):
                    digest_vars.add(target.id)
    for child in _scope_nodes(node):
        if not isinstance(child, ast.Call):
            continue
        name = terminal_name(child.func)
        if name in HASH_CONSTRUCTORS:
            yield from child.args
        elif (isinstance(child.func, ast.Attribute)
                and child.func.attr == "update"
                and terminal_name(child.func.value) in digest_vars):
            yield from child.args


def _strip_encode(node: ast.AST) -> ast.AST:
    """``x.encode(...)`` contributes ``x``'s bytes."""
    if isinstance(node, ast.Call) \
            and isinstance(node.func, ast.Attribute) \
            and node.func.attr == "encode":
        return node.func.value
    return node


def _has_sort_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys" \
                and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


def _is_json_dumps(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) \
        and dotted_name(node.func) in ("json.dumps", "dumps")


class _FunctionRule(ProjectChecker):
    """Shared per-function dispatch for the C5xx checks."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Module(self, node: ast.Module) -> None:
        self.check_function(node)
        self.generic_visit(node)

    def check_function(self, node: ast.AST) -> None:
        raise NotImplementedError


@register
class UnsortedJsonKeyRule(_FunctionRule):
    """C501 — JSON hashed into a key must use ``sort_keys=True``.

    ``json.dumps`` without ``sort_keys`` serializes dict insertion
    order; two call paths building the same params in different
    order hash to different keys and the cache forks.
    """

    rule_id = "C501"
    rule_name = "unsorted-json-key"
    rationale = ("hashing insertion-ordered JSON forks the cache: "
                 "equal params, different key")

    _FIX_NOTE = "add sort_keys=True to the json.dumps call"

    def check_function(self, node: ast.AST) -> None:
        unsorted_vars = self._unsorted_dump_vars(node)
        for raw in _hash_inputs(node):
            value = _strip_encode(raw)
            if _is_json_dumps(value) and not _has_sort_keys(value):
                self.report(value, "json.dumps(...) hashed without "
                                   "sort_keys=True; key depends on "
                                   "dict insertion order",
                            fix=append_argument_fix(
                                value, "sort_keys=True", self._FIX_NOTE))
            elif isinstance(value, ast.Name) \
                    and value.id in unsorted_vars:
                self.report(value, f"{value.id!r} holds json.dumps "
                                   f"output without sort_keys=True "
                                   f"and is hashed; key depends on "
                                   f"dict insertion order",
                            fix=append_argument_fix(
                                unsorted_vars[value.id],
                                "sort_keys=True", self._FIX_NOTE))

    @staticmethod
    def _unsorted_dump_vars(node: ast.AST) -> Dict[str, ast.Call]:
        dumps: Dict[str, ast.Call] = {}
        for child in _scope_nodes(node):
            if not isinstance(child, ast.Assign):
                continue
            value = _strip_encode(child.value)
            if _is_json_dumps(value) and not _has_sort_keys(value):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        dumps[target.id] = value
        return dumps


@register
class ReprDigestInputRule(_FunctionRule):
    """C502 — never hash ``str()``/``repr()``/f-strings of objects.

    ``repr`` output is an implementation detail (float formatting,
    dict order, object addresses); a cache key built from it is not a
    function of the value.  Serialize canonically instead.
    """

    rule_id = "C502"
    rule_name = "repr-digest-input"
    rationale = ("str()/repr()/f-string output is not canonical; "
                 "keys built from it drift across versions and "
                 "platforms")

    def check_function(self, node: ast.AST) -> None:
        for raw in _hash_inputs(node):
            value = _strip_encode(raw)
            if isinstance(value, ast.Call) \
                    and terminal_name(value.func) in ("str", "repr") \
                    and value.args \
                    and not isinstance(value.args[0], ast.Constant):
                self.report(value, f"{terminal_name(value.func)}() of "
                                   f"a live object hashed into a "
                                   f"digest; serialize canonically "
                                   f"(sorted JSON) instead")
            elif isinstance(value, ast.JoinedStr):
                self.report(value, "f-string hashed into a digest; "
                                   "its formatting is not canonical "
                                   "— serialize canonically instead")


@register
class UnversionedCacheKeyRule(_FunctionRule):
    """C503 — params dicts fed to ``artifact_key`` carry a version.

    A key without a format-version entry keeps resolving to blobs
    written by older layouts; bumping the version is what orphans
    stale artifacts instead of misreading them.
    """

    rule_id = "C503"
    rule_name = "unversioned-cache-key"
    rationale = ("cache keys without a format version resolve to "
                 "stale blobs after any layout change")

    def check_function(self, node: ast.AST) -> None:
        dict_keys = self._literal_dict_keys(node)
        for child in _scope_nodes(node):
            if not isinstance(child, ast.Call) \
                    or terminal_name(child.func) not in KEY_HELPERS \
                    or not child.args:
                continue
            arg = child.args[0]
            keys: Optional[List[str]] = None
            if isinstance(arg, ast.Dict):
                keys = self._keys_of(arg)
            elif isinstance(arg, ast.Name):
                keys = dict_keys.get(arg.id)
            if keys is None:
                continue
            if not any(VERSION_MARKER in key.lower() for key in keys):
                self.report(child, "params hashed into a cache key "
                                   "carry no *version* entry; layout "
                                   "changes will be misread, not "
                                   "orphaned")

    def _literal_dict_keys(self, node: ast.AST
                           ) -> Dict[str, List[str]]:
        """Vars assigned a dict literal, with later ``d[k] = v`` adds.

        A var assigned from anything non-literal is untracked (and
        so never reported) — the rule only judges dicts it can see
        completely.
        """
        keys: Dict[str, List[str]] = {}
        for child in _scope_nodes(node):
            if isinstance(child, ast.Assign) \
                    and len(child.targets) == 1 \
                    and isinstance(child.targets[0], ast.Name):
                name = child.targets[0].id
                if isinstance(child.value, ast.Dict):
                    keys[name] = self._keys_of(child.value)
                else:
                    keys.pop(name, None)
            elif isinstance(child, ast.Assign) \
                    and len(child.targets) == 1 \
                    and isinstance(child.targets[0], ast.Subscript):
                target = child.targets[0]
                base = target.value
                index = target.slice
                if isinstance(base, ast.Name) and base.id in keys \
                        and isinstance(index, ast.Constant) \
                        and isinstance(index.value, str):
                    keys[base.id].append(index.value)
        return keys

    @staticmethod
    def _keys_of(node: ast.Dict) -> List[str]:
        keys: List[str] = []
        for key in node.keys:
            if isinstance(key, ast.Constant) \
                    and isinstance(key.value, str):
                keys.append(key.value)
        return keys
