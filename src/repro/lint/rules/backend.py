"""B-rules: accel backend-contract conformance.

The datapath backend contract (``repro.accel``) is: ``pure.py`` is
the semantic reference, ``numpy_backend.py`` mirrors every public
kernel signature byte-for-byte, the package ``__init__`` exposes one
dispatch function per kernel that records observability counters, and
*nobody else* imports a backend module directly — backend selection
must stay behind ``select()``/``active()`` or the golden-digest
equivalence guarantee silently stops covering the code that bypassed
it.

These rules verify the contract structurally, and generically: any
package that contains both a ``pure`` and a ``numpy_backend``
submodule is held to it, which is what lets the fixture packages (and
the future codec backends of ROADMAP item 2) be checked by the exact
code that checks ``repro.accel``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.lint.astutils import terminal_name
from repro.lint.fix import insert_statement_fix
from repro.lint.registry import ProjectChecker, register
from repro.lint.summaries import FunctionSummary, ModuleSummary

#: The semantic-reference submodule every backend package must have.
PURE = "pure"
#: Registered implementation submodules that mirror the reference.
#: ``native_backend`` is the ROADMAP phase-3 native backend — listed
#: now so its package is held to the contract from its first commit.
NUMPY = "numpy_backend"
NATIVE = "native_backend"
IMPL_BACKENDS = (NUMPY, NATIVE)


def is_backend_package(index, pkg: str) -> bool:
    """A package with a ``pure`` reference and >= 1 implementation."""
    if f"{pkg}.{PURE}" not in index.modules:
        return False
    return any(f"{pkg}.{impl}" in index.modules
               for impl in IMPL_BACKENDS)


def backend_package_of(index, module_name: str) -> Optional[str]:
    """The backend package a module belongs to, if any.

    ``pkg.pure`` / ``pkg.numpy_backend`` / ``pkg.native_backend`` /
    ``pkg`` itself all map to ``pkg`` when the index knows the pure
    reference plus at least one implementation submodule.
    """
    candidates = [module_name]
    head, _, tail = module_name.rpartition(".")
    if tail == PURE or tail in IMPL_BACKENDS:
        candidates.append(head)
    for pkg in candidates:
        if is_backend_package(index, pkg):
            return pkg
    return None


def public_kernels(module: ModuleSummary) -> List[FunctionSummary]:
    """Top-level public functions of a backend module, in source order."""
    kernels = []
    for qualname, function in module.functions.items():
        if function.is_nested or function.kind != "function":
            continue
        if function.name.startswith("_"):
            continue
        if qualname != f"{module.module}.{function.name}":
            continue  # methods / nested helpers
        kernels.append(function)
    return sorted(kernels, key=lambda f: f.line)


def _param_names(function: FunctionSummary) -> Tuple[str, ...]:
    return tuple(param.name for param in function.params)


class _BackendChecker(ProjectChecker):
    """Shared role detection for the contract rules."""

    def _role(self) -> Tuple[Optional[str], Optional[str]]:
        """``(role, package)`` of the file under inspection."""
        if self.index is None or self.module is None:
            return None, None
        name = self.module.module
        pkg = backend_package_of(self.index, name)
        if pkg is None:
            return None, None
        if name == f"{pkg}.{PURE}":
            return PURE, pkg
        for impl in IMPL_BACKENDS:
            if name == f"{pkg}.{impl}":
                return impl, pkg
        if name == pkg:
            return "dispatch", pkg
        return None, pkg

    def _sibling(self, pkg: str, sub: str) -> ModuleSummary:
        return self.index.modules[f"{pkg}.{sub}"]

    def _top_level_functions(self, tree: ast.Module
                             ) -> List[ast.FunctionDef]:
        return [stmt for stmt in tree.body
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]


@register
class BackendSignatureDrift(_BackendChecker):
    rule_id = "B801"
    rule_name = "backend-signature-drift"
    rationale = (
        "Every implementation backend must mirror every public pure "
        "kernel with an identical signature; drift means the dispatch "
        "layer calls the backends differently and the byte-identity "
        "equivalence suite no longer tests what production runs."
    )

    def visit_Module(self, node: ast.Module) -> None:
        role, pkg = self._role()
        if role == PURE:
            self._check_pure_side(node, pkg)
        elif role in IMPL_BACKENDS:
            self._check_impl_side(node, pkg)

    def _check_pure_side(self, tree: ast.Module, pkg: str) -> None:
        impl_mods = [self._sibling(pkg, impl) for impl in IMPL_BACKENDS
                     if f"{pkg}.{impl}" in self.index.modules]
        for definition in self._top_level_functions(tree):
            if definition.name.startswith("_"):
                continue
            reference = self.module.functions.get(
                f"{self.module.module}.{definition.name}")
            if reference is None:
                continue
            for impl_mod in impl_mods:
                counterpart = impl_mod.functions.get(
                    f"{impl_mod.module}.{definition.name}")
                if counterpart is None:
                    self.report(definition, (
                        f"kernel '{definition.name}' has no counterpart "
                        f"in {impl_mod.module}; the backends have "
                        f"drifted apart"))
                elif _param_names(counterpart) != _param_names(reference):
                    self.report(definition, (
                        f"kernel '{definition.name}' signature drift: "
                        f"pure reference takes {_param_names(reference)} "
                        f"but {impl_mod.module} takes "
                        f"{_param_names(counterpart)}"))

    def _check_impl_side(self, tree: ast.Module, pkg: str) -> None:
        pure_mod = self._sibling(pkg, PURE)
        pure_names = {k.name for k in public_kernels(pure_mod)}
        for definition in self._top_level_functions(tree):
            if definition.name.startswith("_"):
                continue
            if definition.name not in pure_names:
                self.report(definition, (
                    f"backend function '{definition.name}' has no pure "
                    f"reference in {pkg}.{PURE}; every public kernel "
                    f"needs a semantic reference implementation"))


@register
class BackendMissingDispatch(_BackendChecker):
    rule_id = "B802"
    rule_name = "backend-missing-dispatch"
    rationale = (
        "Every public kernel must be reachable through a dispatch "
        "function in the backend package __init__; a kernel without "
        "one forces callers to import a backend directly, bypassing "
        "selection and observability."
    )

    def visit_Module(self, node: ast.Module) -> None:
        role, pkg = self._role()
        if role != PURE:
            return
        package_mod = self.index.modules.get(pkg)
        if package_mod is None:
            return
        for definition in self._top_level_functions(node):
            if definition.name.startswith("_"):
                continue
            if f"{self.module.module}.{definition.name}" \
                    not in self.module.functions:
                continue
            if f"{pkg}.{definition.name}" not in package_mod.functions:
                self.report(definition, (
                    f"kernel '{definition.name}' has no dispatch "
                    f"function in {pkg}.__init__; callers cannot reach "
                    f"it without importing a backend directly"))


@register
class DispatchMissingRecord(_BackendChecker):
    rule_id = "B803"
    rule_name = "dispatch-missing-record"
    rationale = (
        "Dispatch functions are the observability choke point: one "
        "that never calls record() makes its kernel invisible to the "
        "accel counters, so backend comparisons silently understate "
        "traffic."
    )

    def visit_Module(self, node: ast.Module) -> None:
        role, pkg = self._role()
        if role != "dispatch":
            return
        kernel_names = {k.name
                        for k in public_kernels(self._sibling(pkg, PURE))}
        for definition in self._top_level_functions(node):
            if definition.name not in kernel_names:
                continue
            if any(isinstance(child, ast.Call)
                   and terminal_name(child.func) == "record"
                   for child in ast.walk(definition)):
                continue
            fix = insert_statement_fix(
                definition,
                f'record("{definition.name}", 0)',
                f"insert a record() call into '{definition.name}'",
            )
            self.report(definition, (
                f"dispatch function '{definition.name}' never calls "
                f"record(); its traffic is invisible to the accel "
                f"counters"), fix=fix)


@register
class BackendBypass(_BackendChecker):
    rule_id = "B804"
    rule_name = "backend-bypass"
    rationale = (
        "Importing a backend module directly pins the implementation "
        "and skips record(); all call sites outside the backend "
        "package must go through its dispatch functions (or active() "
        "inside measured inner loops)."
    )

    def _outside(self, pkg: str) -> bool:
        name = self.module.module
        return name != pkg and not name.startswith(f"{pkg}.")

    def _check_target(self, node: ast.AST, target: str) -> None:
        head, _, tail = target.rpartition(".")
        if (tail != PURE and tail not in IMPL_BACKENDS) or not head:
            return
        if not is_backend_package(self.index, head) \
                or f"{head}.{tail}" not in self.index.modules:
            return
        if self._outside(head):
            self.report(node, (
                f"direct import of backend module '{target}' bypasses "
                f"{head} dispatch; use the package-level kernels or "
                f"active()"))

    def visit_Import(self, node: ast.Import) -> None:
        if self.index is None or self.module is None:
            return
        for alias in node.names:
            self._check_target(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.index is None or self.module is None:
            return
        base = node.module or ""
        if node.level:
            parts = self.module.module.split(".")
            if node.level > len(parts):
                return
            prefix = ".".join(parts[:len(parts) - node.level])
            base = f"{prefix}.{base}" if base else prefix
        if base:
            self._check_target(node, base)
        for alias in node.names:
            if base:
                self._check_target(node, f"{base}.{alias.name}")
