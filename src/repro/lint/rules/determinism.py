"""Determinism rules (D1xx).

Every experiment in the repository must be bit-reproducible (the
golden-file test hashes generator output); these rules ban the usual
sources of run-to-run drift: wall clocks, shared/unseeded RNGs, and
hash-order iteration.
"""

from __future__ import annotations

import ast

from repro.lint.fix import wrap_call_fix
from repro.lint.registry import Checker, register
from repro.lint.astutils import dotted_name, terminal_name

#: Dotted call names that read the wall clock or OS entropy.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
})

#: Bare names (``from time import perf_counter``) that are unambiguous
#: clock reads.  A bare ``time()`` is not flagged — too generic.
WALL_CLOCK_BARE = frozenset({
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
    "time_ns", "utcnow",
})

#: ``random`` module-level functions that use the interpreter-global
#: RNG — shared state whose draw order depends on import/call order
#: across the whole process.
GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "getrandbits",
    "randbytes", "seed",
})

#: Entropy sources that are nondeterministic by construction.
ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.choice", "random.SystemRandom",
})


@register
class WallClockRule(Checker):
    """D101 — no wall-clock reads in simulation code.

    Simulated time is ``Simulator.now`` (integer picoseconds); reading
    the host clock makes results vary with machine load and breaks the
    golden-file hash contract.
    """

    rule_id = "D101"
    rule_name = "wall-clock"
    rationale = ("simulation time is Simulator.now; host-clock reads make "
                 "results machine-dependent")
    #: The one sanctioned wall-clock module: host profiling lives in
    #: ``repro.obs.profiling`` and records only ``wall.*`` metrics,
    #: which determinism comparisons exclude by construction.
    exempt_paths = ("*/repro/obs/profiling.py", "repro/obs/profiling.py")

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Name)
                and node.func.id in WALL_CLOCK_BARE):
            self.report(node, f"wall-clock read {node.func.id}(); use "
                              f"Simulator.now for simulated time")
        else:
            dotted = dotted_name(node.func)
            if dotted is not None:
                tail = ".".join(dotted.split(".")[-2:])
                if dotted in WALL_CLOCK_CALLS or tail in WALL_CLOCK_CALLS:
                    self.report(node, f"wall-clock read {dotted}(); use "
                                      f"Simulator.now for simulated time")
        self.generic_visit(node)


#: ``time``-module functions that read a host clock.  ``sleep`` and
#: the struct/formatting helpers are deliberately absent.
TIME_CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns",
})


@register
class ClockImportRule(Checker):
    """D104 — clock callables may only be *imported* in obs/profiling.

    D101 flags wall-clock reads at the call site, but call-site
    analysis cannot see through a rebinding import: ``from time import
    perf_counter as tick`` (or ``import time as t``) makes every later
    ``tick()`` invisible to it.  This rule closes that hole at the
    import statement.  ``repro.obs.profiling`` — the one module whose
    job is host timing — is exempt; everything else must route wall
    measurements through it.
    """

    rule_id = "D104"
    rule_name = "clock-import"
    rationale = ("importing clock callables rebinds them past D101's "
                 "call-site analysis; wall timing belongs in "
                 "repro.obs.profiling")
    exempt_paths = ("*/repro/obs/profiling.py", "repro/obs/profiling.py")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in TIME_CLOCK_FNS:
                    bound = alias.asname or alias.name
                    self.report(node, f"from time import {alias.name} "
                                      f"binds a wall clock to "
                                      f"{bound!r}; use "
                                      f"repro.obs.profiling instead")
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time" and alias.asname is not None:
                self.report(node, f"import time as {alias.asname} hides "
                                  f"clock reads from call-site "
                                  f"analysis; use repro.obs.profiling "
                                  f"instead")
        self.generic_visit(node)


@register
class UnseededRandomRule(Checker):
    """D102 — randomness must come from an explicitly seeded generator.

    The global ``random`` module functions share one process-wide RNG:
    any unrelated import that draws from it shifts every later draw.
    Models must create ``random.Random(seed)`` instances (see
    ``BitstreamSpec.seed``) so each stream is independent and pinned.
    """

    rule_id = "D102"
    rule_name = "unseeded-random"
    rationale = ("global/unseeded RNGs and OS entropy break bit-exact "
                 "reproduction; use random.Random(seed)")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted in ENTROPY_CALLS:
            self.report(node, f"nondeterministic entropy source "
                              f"{dotted}(); use random.Random(seed)")
        elif dotted == "random.Random" and not node.args:
            self.report(node, "random.Random() without a seed argument; "
                              "pass an explicit seed")
        elif dotted is not None and "." in dotted:
            head, _, attr = dotted.rpartition(".")
            if head == "random" and attr in GLOBAL_RANDOM_FNS:
                self.report(node, f"call to global-RNG function "
                                  f"{dotted}(); draw from a local "
                                  f"random.Random(seed) instance")
        self.generic_visit(node)


@register
class UnorderedIterationRule(Checker):
    """D103 — no iteration over sets (hash order leaks into results).

    Set iteration order depends on insertion history and interpreter
    build; anything derived from it (schedules, generated bytes, report
    rows) stops being reproducible.  Wrap the set in ``sorted()``.
    """

    rule_id = "D103"
    rule_name = "unordered-iteration"
    rationale = ("set iteration order is interpreter-dependent; sorted() "
                 "makes derived results stable")

    #: Calls that materialize an iterable in arbitrary set order.
    _ORDER_SENSITIVE_WRAPPERS = ("list", "tuple", "iter", "enumerate")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in node.generators:
            self._check_iterable(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        name = terminal_name(node.func)
        if (name in self._ORDER_SENSITIVE_WRAPPERS and len(node.args) == 1
                and self._is_set_expression(node.args[0])):
            self.report(node, f"{name}() over a set materializes hash "
                              f"order; use sorted() instead",
                        fix=wrap_call_fix(node.args[0], "sorted",
                                          "wrap the set in sorted()"))
        self.generic_visit(node)

    def _check_iterable(self, iterable: ast.AST, where: str) -> None:
        if self._is_set_expression(iterable):
            self.report(iterable, f"{where} iterates a set in hash order; "
                                  f"wrap it in sorted()",
                        fix=wrap_call_fix(iterable, "sorted",
                                          "wrap the set in sorted()"))

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return terminal_name(node.func) in ("set", "frozenset")
        return False
