"""Accelerator-containment rules (A6xx).

The datapath backends in :mod:`repro.accel` are the only sanctioned
home for third-party array libraries: models, codecs and analysis code
must stay importable (and correct) on a numpy-free install, and the
pure/numpy byte-equivalence contract is only enforceable while every
vectorised code path lives behind the accel kernel API.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Checker, register


@register
class NumpyContainmentRule(Checker):
    """A601 — numpy may only be imported inside ``repro.accel``.

    A direct numpy import anywhere else either breaks the numpy-free
    install (hard dependency) or forks the datapath around the backend
    dispatch (silent loss of the byte-equivalence guarantee).  Code
    that wants vectorised kernels calls :mod:`repro.accel`; code that
    only needs to know whether numpy exists calls
    ``repro.accel.numpy_available()``.
    """

    rule_id = "A601"
    rule_name = "numpy-containment"
    rationale = ("numpy is an optional accelerator confined to "
                 "repro.accel; importing it elsewhere breaks the "
                 "numpy-free install and bypasses the byte-identical "
                 "backend dispatch")
    exempt_paths = ("*/repro/accel/*", "repro/accel/*")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self.report(node, f"import {alias.name} outside "
                                  f"repro.accel; use the repro.accel "
                                  f"kernel API instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0 and (module == "numpy"
                                or module.startswith("numpy.")):
            self.report(node, f"from {module} import ... outside "
                              f"repro.accel; use the repro.accel "
                              f"kernel API instead")
        self.generic_visit(node)
