"""Cross-function unit-propagation rules (U1xx).

Where the local U0xx rules check one expression against one naming
convention, these follow values *across call boundaries* using the
project index: a hertz value flowing into a ``period_s`` parameter
two modules away, arithmetic mixing picoseconds with nanoseconds, a
function whose name promises one unit but whose returns carry
another, and bare-constant returns feeding unit-annotated sinks.

All four rules fire only when both sides of a conflict are *proven*
(see :mod:`repro.lint.dataflow`); unknown units stay silent.
"""

from __future__ import annotations

import ast

from repro.lint.dataflow import FlowChecker
from repro.lint.registry import register
from repro.lint.astutils import terminal_name
from repro.lint.summaries import FunctionSummary
from repro.lint.unitlex import describe_mismatch, unit_of_name


def _iter_bound_args(node: ast.Call, summary: FunctionSummary):
    """Pair call arguments with the parameters they bind to."""
    params = summary.explicit_params
    for position, arg in enumerate(node.args):
        if isinstance(arg, ast.Starred):
            return  # positions beyond a *splat are unknowable
        if position < len(params):
            yield params[position], arg
    by_name = {param.name: param for param in params}
    for keyword in node.keywords:
        if keyword.arg is not None and keyword.arg in by_name:
            yield by_name[keyword.arg], keyword.value


@register
class CrossUnitArgumentRule(FlowChecker):
    """U101 — argument unit must match the parameter's unit.

    ``f(period_s=...)`` called with a value inferred as hertz is the
    project-wide version of the bug U001 catches locally; the index
    makes the parameter's contract visible from any call site.
    """

    rule_id = "U101"
    rule_name = "cross-unit-argument"
    rationale = ("a value inferred as one unit bound to a parameter "
                 "named for another corrupts every quantity computed "
                 "downstream of the call")

    def check_call(self, node: ast.Call) -> None:
        summary = self.resolve_call(node)
        if summary is None:
            return
        for param, arg in _iter_bound_args(node, summary):
            if param.unit is None:
                continue
            have = self.infer(arg)
            if have is None or have == param.unit:
                continue
            self.report(arg, f"argument for {summary.name}"
                             f"(... {param.name} ...) is {have!r} but "
                             f"the parameter expects {param.unit!r}; "
                             + describe_mismatch(have, param.unit))


@register
class MixedUnitArithmeticRule(FlowChecker):
    """U102 — no +/-/comparison between values of different units.

    Adding picoseconds to nanoseconds, or comparing a byte count to a
    KB count, is meaningless whatever the dimension bookkeeping says;
    with call returns resolved project-wide the conflict shows up
    even when one side came from a function in another module.
    """

    rule_id = "U102"
    rule_name = "mixed-unit-arithmetic"
    rationale = ("adding or comparing values of different units is a "
                 "silent scale error; convert through repro.units "
                 "first")

    def check_binop(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.left, node.right, "arithmetic")

    def check_augassign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.target, node.value,
                             "augmented assignment")

    def check_compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                               ast.Eq, ast.NotEq)):
                self._check_pair(node, left, right, "comparison")
            left = right

    def _check_pair(self, node: ast.AST, left: ast.AST,
                    right: ast.AST, what: str) -> None:
        left_unit = self.infer(left)
        right_unit = self.infer(right)
        if left_unit is None or right_unit is None \
                or left_unit == right_unit:
            return
        self.report(node, f"{what} mixes {left_unit!r} with "
                          f"{right_unit!r}; "
                          + describe_mismatch(left_unit, right_unit))


@register
class ReturnUnitMismatchRule(FlowChecker):
    """U103 — a unit-suffixed function must return that unit.

    ``def settle_time_ps(...): return delay_ns`` lies to every caller
    that trusts the name — which is exactly what U101 and the rest of
    the inference do.
    """

    rule_id = "U103"
    rule_name = "return-unit-mismatch"
    rationale = ("a function named for one unit returning another "
                 "poisons call-graph inference and every caller that "
                 "trusts the name")

    def __init__(self, path: str, index=None, module=None) -> None:
        super().__init__(path, index=index, module=module)
        self._expected_stack: list = []

    def enter_function(self, node: ast.AST) -> None:
        self._expected_stack.append(unit_of_name(node.name))

    def leave_function(self, node: ast.AST) -> None:
        self._expected_stack.pop()

    def check_return(self, node: ast.Return) -> None:
        expected = (self._expected_stack[-1]
                    if self._expected_stack else None)
        if expected is None or node.value is None:
            return
        actual = self.infer(node.value)
        if actual is None or actual == expected:
            return
        self.report(node, f"function promises {expected!r} by name "
                          f"but this return is {actual!r}; "
                          + describe_mismatch(actual, expected))


@register
class UnitlessReturnToSinkRule(FlowChecker):
    """U104 — bare-constant returns must not feed unit parameters.

    A helper that returns a naked literal carries no unit provenance;
    binding its result to a ``*_ps``/``*_hz`` parameter hides a
    magic number where the unit types cannot check it.  Name the
    constant with a unit suffix (or route it through ``repro.units``)
    so inference — and the next reader — can see what it is.
    """

    rule_id = "U104"
    rule_name = "unitless-return-to-sink"
    rationale = ("a function returning bare numeric literals feeding "
                 "a unit-suffixed parameter is an unchecked magic "
                 "number crossing an API boundary")

    def check_call(self, node: ast.Call) -> None:
        summary = self.resolve_call(node)
        if summary is None:
            return
        for param, arg in _iter_bound_args(node, summary):
            if param.unit is None or not isinstance(arg, ast.Call):
                continue
            inner = self.resolve_call(arg)
            if inner is None or not inner.returns_only_constants():
                continue
            if terminal_name(arg.func) in ("int", "round", "len"):
                continue
            self.report(arg, f"{inner.name}() returns bare numeric "
                             f"literals with no unit, but its result "
                             f"binds to parameter {param.name!r} "
                             f"({param.unit}); give the constant a "
                             f"unit-suffixed name")
