"""Process-safety rules for the sweep engine (P4xx).

``repro.sweep`` promises byte-identical serial/parallel results; that
only holds if work shipped to a ``ProcessPoolExecutor`` is hermetic.
These rules police the three ways the promise breaks:

* a worker function reading mutable module globals (each process gets
  its own copy — silently divergent state, not shared state),
* order-unstable or unpicklable objects inside ``RunSpec`` /
  ``SweepGrid`` definitions (grid expansion order becomes
  interpreter-dependent, or dispatch dies at pickle time),
* unordered iteration feeding cache-key or digest construction
  (the same logical inputs hash differently across runs).
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.lint.fix import wrap_call_fix
from repro.lint.registry import ProjectChecker, register
from repro.lint.astutils import dotted_name, terminal_name

#: Executor method names that ship a callable to worker processes.
DISPATCH_METHODS = ("map", "submit")

#: Receiver name fragments marking an executor object.
EXECUTOR_HINTS = ("pool", "executor")

#: Grid/spec constructors whose fields must be stable and picklable.
GRID_CONSTRUCTORS = ("RunSpec", "SweepGrid", "PayloadSpec")

#: Call names that begin a digest or cache-key computation.
DIGEST_CALLS = ("sha256", "sha1", "sha224", "sha384", "sha512", "md5",
                "blake2b", "blake2s", "artifact_key")

#: Wrappers that impose a deterministic order on any iterable.
ORDERING_CALLS = ("sorted", "min", "max")


def _is_dispatch(node: ast.Call) -> Optional[ast.AST]:
    """The worker argument of ``pool.map(worker, ...)``, or ``None``."""
    func = node.func
    if not isinstance(func, ast.Attribute) \
            or func.attr not in DISPATCH_METHODS or not node.args:
        return None
    receiver = terminal_name(func.value)
    if receiver is None \
            or not any(hint in receiver.lower() for hint in EXECUTOR_HINTS):
        return None
    return node.args[0]


def _partial_target(node: ast.AST) -> ast.AST:
    """Unwrap ``functools.partial(f, ...)`` to ``f``."""
    if isinstance(node, ast.Call) \
            and terminal_name(node.func) == "partial" and node.args:
        return node.args[0]
    return node


@register
class WorkerCapturesMutableGlobalRule(ProjectChecker):
    """P401 — pool workers must not read mutable module globals.

    ``fork`` copies, ``spawn`` re-imports: either way a worker's view
    of a mutable global diverges from the parent's the moment anyone
    mutates it, and results stop being a function of the spec.  Pass
    state through the spec (or make the global an immutable tuple).
    """

    rule_id = "P401"
    rule_name = "worker-captures-mutable-global"
    rationale = ("a worker process sees a private copy of mutable "
                 "module state; results silently depend on fork "
                 "timing instead of the run spec")

    def visit_Call(self, node: ast.Call) -> None:
        worker = _is_dispatch(node)
        if worker is not None:
            self._check_worker(node, _partial_target(worker))
        self.generic_visit(node)

    def _check_worker(self, site: ast.Call, worker: ast.AST) -> None:
        if isinstance(worker, ast.Lambda):
            self.report(site, "lambda passed to a process pool is "
                              "unpicklable; use a module-level "
                              "function")
            return
        if self.index is None:
            return
        summary = self.index.resolve(self.module, dotted_name(worker))
        if summary is None:
            return
        if summary.is_nested:
            self.report(site, f"worker {summary.name}() is a nested "
                              f"function; process pools need "
                              f"module-level callables")
            return
        owner = self._module_of(summary.qualname)
        if owner is None:
            return
        captured = sorted(set(summary.global_reads)
                          & set(owner.mutable_globals))
        for name in captured:
            self.report(site, f"worker {summary.name}() reads mutable "
                              f"module global {name!r}; pass it "
                              f"through the spec or freeze it")

    def _module_of(self, qualname: str):
        best = None
        for module_name, summary in self.index.modules.items():
            if qualname.startswith(module_name + ".") \
                    and (best is None
                         or len(module_name) > len(best.module)):
                best = summary
        return best


@register
class UnstableGridObjectRule(ProjectChecker):
    """P402 — grid/spec fields must be stable, picklable values.

    A ``set`` inside ``SweepGrid(controllers=...)`` makes expansion
    order an interpreter detail; a lambda or generator dies at
    pickle time inside the first worker.  ``sorted(...)`` wrapping
    restores a defined order and is always accepted.
    """

    rule_id = "P402"
    rule_name = "unstable-grid-object"
    rationale = ("sweep grids are expanded, sorted, and pickled; "
                 "sets, lambdas and generators break ordering or "
                 "dispatch")

    def visit_Call(self, node: ast.Call) -> None:
        if terminal_name(node.func) in GRID_CONSTRUCTORS:
            for arg in node.args:
                self._scan(node, arg, top=True)
            for keyword in node.keywords:
                self._scan(node, keyword.value, top=True)
        self.generic_visit(node)

    def _scan(self, site: ast.Call, node: ast.AST, top: bool = False
              ) -> None:
        if isinstance(node, ast.Call):
            callee = terminal_name(node.func)
            if callee in ORDERING_CALLS:
                return  # sorted(...) restores a defined order
            for arg in node.args:
                self._scan(site, arg)
            for keyword in node.keywords:
                self._scan(site, keyword.value)
            return
        if isinstance(node, (ast.Set, ast.SetComp)):
            self.report(node, "set inside a grid/spec field has no "
                              "defined order; use a sorted tuple")
            return
        if isinstance(node, ast.DictComp):
            self.report(node, "dict comprehension inside a grid/spec "
                              "field; use a sorted tuple of pairs")
            return
        if isinstance(node, ast.Lambda):
            self.report(node, "lambda inside a grid/spec field is "
                              "unpicklable; use a named function")
            return
        if isinstance(node, ast.GeneratorExp) and top:
            self.report(node, "bare generator bound to a grid/spec "
                              "field is single-use and unpicklable; "
                              "materialize it with tuple(...)")
            return
        for child in ast.iter_child_nodes(node):
            self._scan(site, child)


@register
class UnorderedDigestInputRule(ProjectChecker):
    """P403 — no unordered iteration inside key/digest construction.

    Within any function that computes a digest or cache key, dict
    views and set-typed values must pass through ``sorted(...)``
    before they contribute bytes — otherwise the same logical inputs
    produce different keys across runs and machines, and the artifact
    cache silently stops deduplicating (or worse, CI hashes drift).
    """

    rule_id = "P403"
    rule_name = "unordered-digest-input"
    rationale = ("hashing iteration-order-dependent bytes makes "
                 "cache keys and digests unstable across runs")

    _DICT_VIEWS = ("items", "keys", "values")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._computes_digest(node):
            for view in self._unsorted_views(node):
                self.report(view, f"dict .{view.func.attr}() iterated "
                                  f"inside digest/key construction "
                                  f"without sorted(); order is not "
                                  f"part of the value",
                            fix=wrap_call_fix(
                                view, "sorted",
                                f"wrap .{view.func.attr}() in sorted()"))
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def _computes_digest(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                name = terminal_name(child.func)
                if name in DIGEST_CALLS:
                    return True
        return False

    def _unsorted_views(self, node: ast.AST):
        sorted_views: Set[int] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call) \
                    and terminal_name(child.func) in ORDERING_CALLS:
                for grand in ast.walk(child):
                    sorted_views.add(id(grand))
        for child in ast.walk(node):
            if id(child) in sorted_views:
                continue
            if isinstance(child, (ast.For, ast.comprehension)):
                candidates = [child.iter]
            else:
                continue
            for candidate in candidates:
                if isinstance(candidate, ast.Call) \
                        and isinstance(candidate.func, ast.Attribute) \
                        and candidate.func.attr in self._DICT_VIEWS \
                        and not candidate.args:
                    yield candidate
