"""Event-safety rules (E2xx).

The event kernel owns dispatch: callbacks are scheduled, fired once in
(time, sequence) order, and cancelled through their handle.  These
rules catch the three classic ways user code subverts that contract.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.registry import Checker, register
from repro.lint.astutils import terminal_name

#: Methods that register a callback with the kernel or a signal.
CALLBACK_METHODS = ("at", "after", "observe", "on_value", "add_waiter")


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


@register
class LoopCaptureRule(Checker):
    """E201 — scheduled lambdas must not capture loop variables.

    A lambda closed over a ``for`` target sees the *final* value of the
    variable when the kernel fires it, not the value at scheduling
    time — every callback in the loop acts on the same (last) item.
    Bind the current value with a default: ``lambda item=item: ...``.
    """

    rule_id = "E201"
    rule_name = "loop-capture-callback"
    rationale = ("callbacks fire after the loop finishes, seeing only the "
                 "final loop value; bind with lambda x=x: ...")

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._loop_targets: List[Set[str]] = []

    def visit_For(self, node: ast.For) -> None:
        self._loop_targets.append(_target_names(node.target))
        self.generic_visit(node)
        self._loop_targets.pop()

    visit_AsyncFor = visit_For

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A def inside the loop creates a fresh scope per call — only
        # track captures within the same function body.
        saved, self._loop_targets = self._loop_targets, []
        self.generic_visit(node)
        self._loop_targets = saved

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        if (self._loop_targets
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CALLBACK_METHODS):
            in_scope: Set[str] = set()
            for targets in self._loop_targets:
                in_scope |= targets
            for arg in (*node.args, *(kw.value for kw in node.keywords)):
                if isinstance(arg, ast.Lambda):
                    captured = self._captured_loop_names(arg, in_scope)
                    for name in sorted(captured):
                        self.report(arg, f"lambda passed to "
                                         f".{node.func.attr}() captures "
                                         f"loop variable {name!r}; bind it "
                                         f"with {name}={name} in the "
                                         f"lambda parameters")
        self.generic_visit(node)

    @staticmethod
    def _captured_loop_names(lam: ast.Lambda, loop_names: Set[str]) -> Set[str]:
        args = lam.args
        bound = {a.arg for a in (*args.posonlyargs, *args.args,
                                 *args.kwonlyargs)}
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        captured: Set[str] = set()
        for node in ast.walk(lam.body):
            if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                    and node.id in loop_names and node.id not in bound):
                captured.add(node.id)
        return captured


@register
class ManualFireRule(Checker):
    """E202 — only the kernel fires event handles.

    Calling ``handle.fire()`` from model code runs the callback at the
    *caller's* position in the event loop, outside the (time, sequence)
    total order — the callback observes a simulation state it was never
    scheduled against.  Schedule through ``Simulator.at/after`` instead.
    """

    rule_id = "E202"
    rule_name = "manual-event-fire"
    rationale = ("firing a handle bypasses (time, sequence) dispatch "
                 "order; only the kernel may call fire()")
    exempt_paths = ("*/repro/sim/kernel.py",)

    def visit_Call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "fire" and not node.args
                and not node.keywords):
            self.report(node, "manual .fire() on an event handle; "
                              "schedule the callback via Simulator.at/"
                              "after and let the kernel dispatch it")
        self.generic_visit(node)


@register
class UseAfterCancelRule(Checker):
    """E203 — a cancelled handle is dead; do not re-arm or reuse it.

    ``ScheduledEvent.cancel()`` is one-way: the kernel skips the entry
    but the handle stays in the heap, so re-scheduling or firing the
    same handle object fires stale state (or nothing).  Create a fresh
    handle with ``Simulator.at/after``.
    """

    rule_id = "E203"
    rule_name = "use-after-cancel"
    rationale = ("cancel() is one-way; reusing the handle fires stale "
                 "state — schedule a fresh one")

    #: Attribute reads that are legitimate on a cancelled handle.
    _ALLOWED_ATTRS = ("cancelled", "fired", "time_ps")

    def _scan_body(self, body: List[ast.stmt]) -> None:
        cancelled: Dict[str, int] = {}
        for stmt in body:
            self._scan_statement(stmt, cancelled)

    def _scan_statement(self, stmt: ast.stmt,
                        cancelled: Dict[str, int]) -> None:
        # Rebinding the name points it at a fresh handle; clear its
        # state.  Attribute/subscript stores mutate the old object and
        # must NOT clear (``dead.payload = 1`` is still a reuse).
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                for name in self._rebound_names(target):
                    cancelled.pop(name, None)
        for node in self._walk_same_scope(stmt):
            if isinstance(node, ast.Call):
                receiver = self._cancel_receiver(node)
                if receiver is not None:
                    cancelled[receiver] = node.lineno
                    continue
            if isinstance(node, ast.Attribute) and isinstance(node.value,
                                                              ast.Name):
                name = node.value.id
                if (name in cancelled and node.lineno > cancelled[name]
                        and node.attr not in self._ALLOWED_ATTRS
                        and node.attr != "cancel"):
                    self.report(node, f"{name}.{node.attr} after "
                                      f"{name}.cancel(); cancelled handles "
                                      f"are dead — create a new one with "
                                      f"Simulator.at/after")

    @classmethod
    def _rebound_names(cls, target: ast.AST) -> Set[str]:
        if isinstance(target, ast.Name):
            return {target.id}
        if isinstance(target, (ast.Tuple, ast.List)):
            names: Set[str] = set()
            for elt in target.elts:
                names |= cls._rebound_names(elt)
            return names
        if isinstance(target, ast.Starred):
            return cls._rebound_names(target.value)
        return set()

    @classmethod
    def _walk_same_scope(cls, stmt: ast.stmt):
        """Pre-order walk of ``stmt`` that stops at nested scopes.

        Nested defs/lambdas get their own cancel-tracking pass (via
        ``visit_FunctionDef``); walking into them here would mix their
        handle names into the enclosing scope and double-report.
        """
        yield stmt
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            yield from cls._walk_same_scope(child)

    def _scan_top_level(self, body: List[ast.stmt]) -> None:
        self._scan_body([stmt for stmt in body
                         if not isinstance(stmt, (ast.FunctionDef,
                                                  ast.AsyncFunctionDef,
                                                  ast.ClassDef))])

    @staticmethod
    def _cancel_receiver(node: ast.Call) -> Optional[str]:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "cancel"
                and isinstance(node.func.value, ast.Name)):
            return node.func.value.id
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan_top_level(node.body)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Module(self, node: ast.Module) -> None:
        self._scan_top_level(node.body)
        self.generic_visit(node)
