"""Float-equality rule (F3xx).

Timestamps are exact integers and energies are accumulated floats;
``==`` against a float literal is wrong for both — always-false noise
for integer picoseconds, representation-dependent for energies.
"""

from __future__ import annotations

import ast

from repro.lint.registry import Checker, register
from repro.lint.astutils import is_float_literal, terminal_name

#: Identifier suffixes of physical quantities that must never be
#: compared to a float literal with ==/!=: integer time values (a float
#: comparand means a unit bug) and accumulated float measures (equality
#: is representation-dependent; use a tolerance).
QUANTITY_SUFFIXES = (
    "_ps", "_ns", "_us", "_ms", "_hz",            # exact integer units
    "_uj", "_mj", "_mw", "_mbps",                 # accumulated measures
    "energy", "power",
)


@register
class FloatEqualityRule(Checker):
    """F301 — no ``==``/``!=`` between unit quantities and float literals.

    ``duration_ps == 1.5`` can never be true (timestamps are ints);
    ``energy_uj == 0.66`` depends on summation order and platform
    rounding.  Compare against integers, or use
    ``repro.units.isclose_rel`` / ``math.isclose`` with a tolerance.
    """

    rule_id = "F301"
    rule_name = "float-equality"
    rationale = ("float-literal equality on timestamps/energies is either "
                 "always false or rounding-dependent; use a tolerance")

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            for quantity, literal in ((left, right), (right, left)):
                name = terminal_name(quantity)
                if (name is not None
                        and name.lower().endswith(QUANTITY_SUFFIXES)
                        and is_float_literal(literal)):
                    self.report(node, f"==/!= between unit quantity "
                                      f"{name!r} and float literal "
                                      f"{literal.value!r}; compare ints or "
                                      f"use repro.units.isclose_rel")
                    break
        self.generic_visit(node)
