"""R-rules: scheduled-callback and sim-process race detection.

The sim kernel is single-threaded and deterministic, so these are not
thread races — they are *order* races: two callbacks land on the event
queue, both touch the same object, and nothing but the kernel's
tie-break decides who runs first.  Refactors that merely renumber
insertion order then change golden digests, which is the hazard class
a multi-tenant fleet scheduler mass-produces.

The happens-before approximation is deliberately shallow and sound in
one direction only: two callbacks are *ordered* when they are
scheduled from the same function with literal times of the same kind
(both absolute or both relative) and different values, or when they
sit in mutually exclusive branches of one ``if``.  Everything else —
equal literals, symbolic times, loop-scheduled callbacks — is treated
as unordered.  What each callback touches comes from the
interprocedural effect summaries (:mod:`repro.lint.effects`)
propagated through the :class:`~repro.lint.project.ProjectIndex`, so
``sim.call_after(d, lambda: self._drain())`` sees everything
``_drain`` (and its callees) mutate.

The kernel and the process wrapper implement the scheduling machinery
these rules model; they are exempt by path.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.astutils import dotted_name, terminal_name
from repro.lint.effects import MUTATOR_METHODS
from repro.lint.registry import ProjectChecker, register

#: ``Simulator`` scheduling entry points, mapped to the kind of their
#: time argument (absolute instant vs relative delay).
SCHEDULE_METHODS = {
    "at": "abs",
    "call_at": "abs",
    "after": "rel",
    "call_after": "rel",
}

#: Receiver names that plausibly denote the simulator object.  The
#: method-name check alone would catch every ``obj.at(...)`` in sight;
#: requiring a sim-looking receiver keeps the rules quiet elsewhere.
_SIM_RECEIVERS = ("sim", "simulator", "kernel")

Root = Tuple[str, str]  # ("self"|"local"|"global", name)


def _looks_like_sim(node: ast.AST) -> bool:
    name = terminal_name(node)
    if name is None:
        return False
    return name.lstrip("_") in _SIM_RECEIVERS \
        or name.endswith("_sim") or name.endswith("sim")


class _Site:
    """One scheduling point: a callback (or process) plus its effects."""

    __slots__ = ("node", "kind", "time_kind", "time_key", "in_loop",
                 "branch", "reads", "writes")

    def __init__(self, node: ast.AST, kind: str,
                 time_kind: Optional[str], time_key: Optional[str],
                 in_loop: bool, branch: Tuple[Tuple[int, int], ...],
                 reads: Set[Root], writes: Set[Root]) -> None:
        self.node = node
        self.kind = kind  # "cb" | "proc"
        self.time_kind = time_kind  # "abs" | "rel" | None
        self.time_key = time_key  # "const:<n>" | "expr:<dump>" | None
        self.in_loop = in_loop
        self.branch = branch
        self.reads = reads
        self.writes = writes

    @property
    def line(self) -> int:
        return self.node.lineno


def _exclusive(a: _Site, b: _Site) -> bool:
    """True when the two sites sit in different arms of one ``if``."""
    for step_a, step_b in zip(a.branch, b.branch):
        if step_a == step_b:
            continue
        return step_a[0] == step_b[0]  # same If node, different arm
    return False


def _same_time(a: _Site, b: _Site) -> bool:
    if a.time_kind != b.time_kind or a.time_key is None:
        return False
    if a.time_key != b.time_key:
        return False
    if a is b:
        # A loop re-evaluates the time expression every iteration;
        # only a literal provably lands on one instant.
        return a.time_key.startswith("const:")
    if a.in_loop or b.in_loop:
        return a.time_key.startswith("const:")
    return True


def _ordered(a: _Site, b: _Site) -> bool:
    if a is b:
        return False
    if a.time_kind != b.time_kind:
        return False
    return (a.time_key is not None and b.time_key is not None
            and a.time_key.startswith("const:")
            and b.time_key.startswith("const:")
            and a.time_key != b.time_key)


def _show(root: Root) -> str:
    tag, name = root
    return f"self.{name}" if tag == "self" else name


def _show_all(roots: Set[Root]) -> str:
    return ", ".join(sorted(_show(root) for root in roots))


class _RaceChecker(ProjectChecker):
    """Shared machinery: find scheduling sites, derive their effects."""

    exempt_paths = (
        "*/repro/sim/kernel.py", "repro/sim/kernel.py",
        "*/repro/sim/process.py", "repro/sim/process.py",
    )

    def __init__(self, path: str, index=None, module=None) -> None:
        super().__init__(path, index=index, module=module)
        self._class_stack: List[str] = []

    # -- traversal ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self.index is not None and self.module is not None:
            self._check_one_function(node)
        self.generic_visit(node)  # nested defs analyzed on their own

    visit_AsyncFunctionDef = visit_FunctionDef

    def check_sites(self, sites: List[_Site]) -> None:
        raise NotImplementedError

    def _check_one_function(self, node: ast.AST) -> None:
        self._locals = self._local_names(node)
        sites: List[_Site] = []
        self._collect_sites(node.body, sites, in_loop=False, branch=())
        if sites:
            self.check_sites(sites)

    def _local_names(self, node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs,
                    args.vararg, args.kwarg):
            if arg is not None:
                names.add(arg.arg)
        for child in ast.walk(node):
            if isinstance(child, ast.Name) \
                    and isinstance(child.ctx, ast.Store):
                names.add(child.id)
        return names

    def _collect_sites(self, stmts: Sequence[ast.stmt],
                       sites: List[_Site], in_loop: bool,
                       branch: Tuple[Tuple[int, int], ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for call in self._own_scope_calls(stmt):
                self._classify_call(call, sites, in_loop, branch)
            if isinstance(stmt, ast.If):
                marker = id(stmt)
                self._collect_sites(stmt.body, sites, in_loop,
                                    branch + ((marker, 0),))
                self._collect_sites(stmt.orelse, sites, in_loop,
                                    branch + ((marker, 1),))
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._collect_sites(stmt.body, sites, True, branch)
                self._collect_sites(stmt.orelse, sites, in_loop, branch)
            else:
                for attr in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, attr, None)
                    if block:
                        self._collect_sites(block, sites, in_loop, branch)
                for handler in getattr(stmt, "handlers", ()):
                    self._collect_sites(handler.body, sites, in_loop,
                                        branch)

    def _own_scope_calls(self, stmt: ast.stmt) -> List[ast.Call]:
        """Call nodes in this statement's expressions, not sub-blocks."""
        calls: List[ast.Call] = []

        def walk(node: ast.AST) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                return
            if isinstance(node, ast.Call):
                calls.append(node)
            for name, value in ast.iter_fields(node):
                if isinstance(node, ast.stmt) and name in (
                        "body", "orelse", "finalbody", "handlers"):
                    continue
                if isinstance(value, ast.AST):
                    walk(value)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, ast.AST):
                            walk(item)

        walk(stmt)
        return calls

    def _classify_call(self, call: ast.Call, sites: List[_Site],
                       in_loop: bool,
                       branch: Tuple[Tuple[int, int], ...]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) \
                and func.attr in SCHEDULE_METHODS \
                and _looks_like_sim(func.value) and len(call.args) >= 2:
            reads, writes = self._callback_effects(call.args[1],
                                                   call.args[2:])
            sites.append(_Site(
                node=call, kind="cb",
                time_kind=SCHEDULE_METHODS[func.attr],
                time_key=self._time_key(call.args[0]),
                in_loop=in_loop, branch=branch,
                reads=reads, writes=writes,
            ))
            return
        if isinstance(func, ast.Attribute) \
                and func.attr == "schedule_batch" \
                and _looks_like_sim(func.value) and call.args:
            self._classify_batch(call, sites, in_loop, branch)
            return
        if terminal_name(func) == "Process" and len(call.args) >= 2:
            reads, writes = self._callback_effects(call.args[1], ())
            sites.append(_Site(
                node=call, kind="proc", time_kind=None, time_key=None,
                in_loop=in_loop, branch=branch,
                reads=reads, writes=writes,
            ))

    def _classify_batch(self, call: ast.Call, sites: List[_Site],
                        in_loop: bool,
                        branch: Tuple[Tuple[int, int], ...]) -> None:
        batch = call.args[0]
        if not isinstance(batch, (ast.List, ast.Tuple)):
            return
        for element in batch.elts:
            if isinstance(element, (ast.Tuple, ast.List)) \
                    and len(element.elts) >= 2:
                reads, writes = self._callback_effects(element.elts[1], ())
                sites.append(_Site(
                    node=element, kind="cb", time_kind="abs",
                    time_key=self._time_key(element.elts[0]),
                    in_loop=in_loop, branch=branch,
                    reads=reads, writes=writes,
                ))

    def _time_key(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, (int, float)):
            return f"const:{node.value!r}"
        try:
            return f"expr:{ast.dump(node)}"
        except Exception:  # pragma: no cover - dump never fails today
            return None

    # -- callback effect extraction -----------------------------------

    def _frame_root(self, node: ast.AST) -> Optional[Root]:
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return ("self", node.attr)
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            return self._frame_root(node.value)
        if isinstance(node, ast.Name):
            name = node.id
            if name == "self":
                return None
            if name in self._locals:
                return ("local", name)
            qualified = self.index.qualify_mutable_global(self.module,
                                                          name)
            if qualified is not None:
                return ("global", qualified)
        return None

    def _callback_effects(self, callback: ast.AST,
                          extra_args: Sequence[ast.AST]
                          ) -> Tuple[Set[Root], Set[Root]]:
        reads: Set[Root] = set()
        writes: Set[Root] = set()
        if isinstance(callback, ast.Lambda):
            self._lambda_effects(callback, reads, writes)
        elif isinstance(callback, ast.Call) \
                and terminal_name(callback.func) == "partial" \
                and callback.args:
            self._reference_effects(callback.args[0], callback.args[1:],
                                    reads, writes)
        elif isinstance(callback, (ast.Name, ast.Attribute, ast.Call)):
            self._reference_effects(callback, extra_args, reads, writes)
        return reads, writes

    def _reference_effects(self, ref: ast.AST,
                           call_args: Sequence[ast.AST],
                           reads: Set[Root], writes: Set[Root]) -> None:
        """Effects of invoking a named callable / generator call.

        ``Process(sim, gen(args))`` hands the *call* ``gen(args)``;
        a plain ``sim.at(t, self._tick)`` hands the *reference*.  Both
        reduce to: resolve the callee, translate its propagated
        effects through the receiver and the argument roots.
        """
        if isinstance(ref, ast.Call):
            call_args = ref.args
            ref = ref.func
        name = dotted_name(ref)
        if name is None:
            return
        enclosing = self._class_stack[-1] if self._class_stack else None
        callee = self.index.resolve(self.module, name, enclosing)
        receiver_root: Optional[Root] = None
        receiver_is_self = False
        if isinstance(ref, ast.Attribute):
            base = ref.value
            if isinstance(base, ast.Name) and base.id == "self":
                receiver_is_self = True
            else:
                receiver_root = self._frame_root(base)
                if receiver_root is not None:
                    reads.add(receiver_root)
        if callee is None:
            return
        effects = self.index.effects(callee)
        for qualified in effects.mutated_globals:
            writes.add(("global", qualified))
        for qualified in effects.global_reads:
            reads.add(("global", qualified))
        if receiver_is_self:
            for attr in effects.mutated_self:
                writes.add(("self", attr))
            for attr in effects.self_reads:
                reads.add(("self", attr))
        elif receiver_root is not None:
            if effects.mutated_self:
                writes.add(receiver_root)
            elif effects.self_reads:
                reads.add(receiver_root)
        params = (callee.explicit_params
                  if receiver_is_self or receiver_root is not None
                  else callee.params)
        for position, arg in enumerate(call_args):
            root = self._frame_root(arg)
            if root is None:
                continue
            reads.add(root)
            if position < len(params) \
                    and params[position].name in effects.mutated_params:
                writes.add(root)

    def _lambda_effects(self, node: ast.Lambda, reads: Set[Root],
                        writes: Set[Root]) -> None:
        bound = {arg.arg for arg in (*node.args.posonlyargs,
                                     *node.args.args,
                                     *node.args.kwonlyargs)}
        for extra in (node.args.vararg, node.args.kwarg):
            if extra is not None:
                bound.add(extra.arg)

        for child in ast.walk(node.body):
            if isinstance(child, ast.Call):
                func = child.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in MUTATOR_METHODS:
                    root = self._bound_aware_root(func.value, bound)
                    if root is not None:
                        writes.add(root)
                    continue
                self._reference_effects(func, child.args, reads, writes)
            elif isinstance(child, ast.Attribute) \
                    and isinstance(child.ctx, ast.Load):
                root = self._bound_aware_root(child, bound)
                if root is not None:
                    reads.add(root)
            elif isinstance(child, ast.Name) \
                    and isinstance(child.ctx, ast.Load) \
                    and child.id not in bound:
                root = self._frame_root(child)
                if root is not None:
                    reads.add(root)

    def _bound_aware_root(self, node: ast.AST,
                          bound: Set[str]) -> Optional[Root]:
        base = node
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if isinstance(base, ast.Name) and base.id in bound:
            return None
        return self._frame_root(node)

    # -- pair enumeration ---------------------------------------------

    def _hazard_pairs(self, sites: List[_Site], kind: str
                      ) -> List[Tuple[_Site, _Site]]:
        chosen = [s for s in sites if s.kind == kind]
        pairs: List[Tuple[_Site, _Site]] = []
        for i, first in enumerate(chosen):
            if first.in_loop:
                pairs.append((first, first))
            for second in chosen[i + 1:]:
                if not _exclusive(first, second):
                    pairs.append((first, second))
        return pairs


@register
class UnorderedCallbackMutation(_RaceChecker):
    rule_id = "R701"
    rule_name = "unordered-callback-mutation"
    rationale = (
        "Two scheduled callbacks mutate the same object and nothing "
        "orders them: the final state depends on the kernel's "
        "insertion-order tie-break, so an innocent refactor that "
        "renumbers scheduling order changes simulation results."
    )

    def check_sites(self, sites: List[_Site]) -> None:
        for first, second in self._hazard_pairs(sites, "cb"):
            if first is not second and _ordered(first, second):
                continue
            shared = first.writes & second.writes
            if not shared:
                continue
            if first is second:
                self.report(first.node, (
                    f"'{_show_all(shared)}' is mutated by every callback "
                    f"scheduled in this loop, with no event ordering "
                    f"between iterations"))
            else:
                self.report(second.node, (
                    f"'{_show_all(shared)}' is mutated by unordered "
                    f"callbacks scheduled at lines {first.line} and "
                    f"{second.line}; order them with distinct times or "
                    f"merge them into one callback"))


@register
class SameTimeOrderDependence(_RaceChecker):
    rule_id = "R702"
    rule_name = "same-time-order-dependence"
    rationale = (
        "Two callbacks land on the same simulation instant and one "
        "reads what the other mutates: the observed value is decided "
        "by the same-timestamp tie-break, a detail no hardware model "
        "should encode."
    )

    def check_sites(self, sites: List[_Site]) -> None:
        for first, second in self._hazard_pairs(sites, "cb"):
            if first is second or not _same_time(first, second):
                continue
            cross = (first.writes & second.reads) \
                | (second.writes & first.reads)
            cross -= first.writes & second.writes  # that pair is R701
            if cross:
                self.report(second.node, (
                    f"callbacks at lines {first.line} and {second.line} "
                    f"run at the same instant and race on "
                    f"'{_show_all(cross)}': the result depends on "
                    f"scheduling order"))


@register
class ProcessSharedState(_RaceChecker):
    rule_id = "R703"
    rule_name = "process-shared-state"
    rationale = (
        "Two simulation processes touch the same mutable object and "
        "at least one mutates it; their interleaving at wait points "
        "is scheduling-order dependent, so shared state needs an "
        "Event handshake, not luck."
    )

    def check_sites(self, sites: List[_Site]) -> None:
        for first, second in self._hazard_pairs(sites, "proc"):
            if first is second:
                shared = set(first.writes)
            else:
                shared = (first.writes & (second.writes | second.reads)) \
                    | (second.writes & (first.writes | first.reads))
            if not shared:
                continue
            if first is second:
                self.report(first.node, (
                    f"every process spawned in this loop mutates "
                    f"'{_show_all(shared)}' with no synchronization "
                    f"between them"))
            else:
                self.report(second.node, (
                    f"processes spawned at lines {first.line} and "
                    f"{second.line} share mutable state "
                    f"'{_show_all(shared)}' without an event ordering"))


@register
class CallbackMutatesGlobal(_RaceChecker):
    rule_id = "R704"
    rule_name = "callback-mutates-global"
    rationale = (
        "A scheduled callback (or spawned process) mutates "
        "module-level state: every simulator instance in the process "
        "shares that module object, so two fleet tenants scheduling "
        "against it interfere even though each simulation is "
        "deterministic in isolation."
    )

    def check_sites(self, sites: List[_Site]) -> None:
        for site in sites:
            shared = {root for root in site.writes
                      if root[0] == "global"}
            for root in sorted(shared):
                kind = ("process" if site.kind == "proc"
                        else "scheduled callback")
                self.report(site.node, (
                    f"{kind} mutates module-level state '{root[1]}'; "
                    f"simulations sharing this module will interfere"))
