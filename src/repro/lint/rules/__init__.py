"""Built-in rule modules; importing this package registers them all.

Rule families:

* ``U0xx`` (:mod:`repro.lint.rules.units`) — unit discipline.
* ``D1xx`` (:mod:`repro.lint.rules.determinism`) — reproducibility.
* ``E2xx`` (:mod:`repro.lint.rules.events`) — event-kernel safety.
* ``F3xx`` (:mod:`repro.lint.rules.floats`) — float comparisons.
"""

from repro.lint.rules import determinism, events, floats, units  # noqa: F401
