"""Built-in rule modules; importing this package registers them all.

Rule families:

* ``U0xx`` (:mod:`repro.lint.rules.units`) — unit discipline.
* ``U1xx`` (:mod:`repro.lint.rules.xunits`) — cross-function unit
  propagation over the project index.
* ``D1xx`` (:mod:`repro.lint.rules.determinism`) — reproducibility.
* ``E2xx`` (:mod:`repro.lint.rules.events`) — event-kernel safety.
* ``F3xx`` (:mod:`repro.lint.rules.floats`) — float comparisons.
* ``P4xx`` (:mod:`repro.lint.rules.sweepsafety`) — process-safety of
  sweep workers, grids, and digest inputs.
* ``C5xx`` (:mod:`repro.lint.rules.cachekeys`) — cache-key purity.
* ``A6xx`` (:mod:`repro.lint.rules.accel`) — accelerator containment.
* ``R7xx`` (:mod:`repro.lint.rules.races`) — scheduled-callback and
  sim-process order races, over the effect summaries.
* ``B8xx`` (:mod:`repro.lint.rules.backend`) — accel backend-contract
  conformance.
"""

from repro.lint.rules import (  # noqa: F401
    accel,
    backend,
    cachekeys,
    determinism,
    events,
    floats,
    races,
    sweepsafety,
    units,
    xunits,
)
