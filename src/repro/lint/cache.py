"""Incremental analysis cache for the lint driver.

Two stores, mirroring the two passes:

* ``summaries/`` — :class:`ModuleSummary` JSON keyed by *file key*
  (SHA-256 of path + content + analyzer version).  Survives edits to
  every other file, so pass 1 of a warm run parses nothing.
* ``results/`` — final per-file violation lists keyed by file key
  **plus the project signature** (hash of every module's summary).
  An edit that changes a file's exported surface (its summary)
  invalidates all results — cross-file findings may shift anywhere —
  while a body-only edit invalidates just that one file.

Writes are atomic (tmp file + ``os.replace``), identical to the
sweep artifact cache, so concurrent/crashed runs never leave a
half-written entry.  Entries are content-addressed and never stale;
orphans are reclaimed with :meth:`LintCache.clear`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from typing import List, Optional

from repro.lint.summaries import ModuleSummary
from repro.lint.violations import Violation

#: Bump on any serialized layout change; embedded in every file key.
#: v2: summaries carry effect data, results carry optional fixes.
LINT_CACHE_VERSION = 2

_KEY_PREFIX = ("v%d" % LINT_CACHE_VERSION).encode("utf-8") + b"\0"


class LintCache:
    """Content-addressed store for summaries and lint results."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.summary_hits = 0
        self.summary_misses = 0
        self.result_hits = 0
        self.result_misses = 0

    def file_key(self, path: str, source: str) -> str:
        digest = hashlib.sha256()
        digest.update(_KEY_PREFIX)
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    # -- summaries ----------------------------------------------------

    def get_summary(self, key: str) -> Optional[ModuleSummary]:
        blob = self._read(self._summary_path(key))
        if blob is not None:
            try:
                summary = ModuleSummary.from_dict(json.loads(blob))
            except (ValueError, KeyError, TypeError):
                summary = None  # corrupt entry: recompute, overwrite
            if summary is not None:
                self.summary_hits += 1
                return summary
        self.summary_misses += 1
        return None

    def put_summary(self, key: str, summary: ModuleSummary) -> None:
        blob = json.dumps(summary.to_dict(), sort_keys=True)
        self._write(self._summary_path(key), blob.encode("utf-8"))

    # -- results ------------------------------------------------------

    def get_results(self, key: str,
                    signature: str) -> Optional[List[Violation]]:
        blob = self._read(self._result_path(key, signature))
        if blob is not None:
            try:
                violations = [Violation.from_dict(entry)
                              for entry in json.loads(blob)]
            except (ValueError, KeyError, TypeError):
                violations = None  # corrupt entry: recompute, overwrite
            if violations is not None:
                self.result_hits += 1
                return violations
        self.result_misses += 1
        return None

    def put_results(self, key: str, signature: str,
                    violations: List[Violation]) -> None:
        blob = json.dumps([violation.to_dict()
                           for violation in violations], sort_keys=True)
        self._write(self._result_path(key, signature), blob.encode("utf-8"))

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)

    # -- paths and atomic IO ------------------------------------------

    def _summary_path(self, key: str) -> str:
        return os.path.join(self.root, "summaries", key[:2], key[2:])

    def _result_path(self, key: str, signature: str) -> str:
        tag = hashlib.sha256(signature.encode("utf-8")).hexdigest()[:16]
        return os.path.join(self.root, "results", key[:2],
                            f"{key[2:]}-{tag}")

    @staticmethod
    def _read(path: str) -> Optional[bytes]:
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except (FileNotFoundError, NotADirectoryError):
            return None

    @staticmethod
    def _write(path: str, blob: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        descriptor, tmp_path = tempfile.mkstemp(dir=directory,
                                                prefix=".tmp-")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise
