"""Autofix engine: plan, preview, and apply mechanically safe edits.

Rules *describe* repairs by attaching a :class:`~repro.lint
.violations.Fix` to a violation; this module owns everything about
executing them:

* **planning** — fixes touching the same file are accepted in source
  order and any fix whose edits would overlap an already-accepted
  edit is skipped (never merged: overlapping edits mean two rules
  disagree about the same characters, which is exactly when a
  mechanical rewrite stops being safe);
* **application** — edits are applied to the original text from the
  bottom up so earlier offsets stay valid, and files are rewritten
  atomically (tmp + ``os.replace``), so an interrupted ``--fix``
  never leaves a half-written module;
* **preview** — unified diffs of exactly what ``--fix`` would do,
  which is what ``--show-fixes`` prints and what CI runs in check
  mode.

Idempotence is structural: a fix removes the pattern its rule
matches, so the second run finds nothing to fix.  The test suite
round-trips every fixer to hold that property.
"""

from __future__ import annotations

import difflib
import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.violations import Edit, Fix, Violation


@dataclass
class FileChange:
    """Planned rewrite of one file."""

    path: str
    old_text: str
    new_text: str
    applied: List[Violation] = field(default_factory=list)
    skipped: List[Violation] = field(default_factory=list)

    def diff(self) -> str:
        return "".join(difflib.unified_diff(
            self.old_text.splitlines(keepends=True),
            self.new_text.splitlines(keepends=True),
            fromfile=f"a/{self.path}",
            tofile=f"b/{self.path}",
        ))


@dataclass
class FixPlan:
    """Every planned change across the linted tree."""

    changes: List[FileChange] = field(default_factory=list)

    @property
    def applied_count(self) -> int:
        return sum(len(change.applied) for change in self.changes)

    @property
    def skipped_count(self) -> int:
        return sum(len(change.skipped) for change in self.changes)

    def render_diffs(self) -> str:
        return "\n".join(change.diff() for change in self.changes
                         if change.applied)


def fixable(violations: Sequence[Violation]) -> List[Violation]:
    return [v for v in violations if v.fix is not None]


def _line_starts(text: str) -> List[int]:
    starts = [0]
    for index, char in enumerate(text):
        if char == "\n":
            starts.append(index + 1)
    return starts


def _offset(starts: List[int], line: int, col: int,
            text_length: int) -> Optional[int]:
    if not 1 <= line <= len(starts):
        return None
    offset = starts[line - 1] + col
    return offset if offset <= text_length else None


def _edit_spans(fix: Fix, starts: List[int], length: int
                ) -> Optional[List[Tuple[int, int, str]]]:
    spans = []
    for edit in fix.edits:
        start = _offset(starts, edit.line, edit.col, length)
        end = _offset(starts, edit.end_line, edit.end_col, length)
        if start is None or end is None or end < start:
            return None  # stale positions: refuse rather than corrupt
        spans.append((start, end, edit.text))
    return spans


def _overlaps(span: Tuple[int, int, str],
              taken: List[Tuple[int, int, str]]) -> bool:
    start, end, _ = span
    for other_start, other_end, _ in taken:
        if start < other_end and other_start < end:
            return True
        # Two zero-width insertions at the same point have no defined
        # order — treat as a conflict so the outcome never depends on
        # rule iteration order.
        if start == end == other_start == other_end:
            return True
    return False


def apply_to_text(text: str, violations: Sequence[Violation]
                  ) -> Tuple[str, List[Violation], List[Violation]]:
    """Apply the fixes of ``violations`` to ``text``.

    Returns ``(new_text, applied, skipped)``.  Acceptance is in
    source order of the violation, making conflicts deterministic.
    """
    starts = _line_starts(text)
    taken: List[Tuple[int, int, str]] = []
    applied: List[Violation] = []
    skipped: List[Violation] = []
    for violation in sorted(v for v in violations if v.fix is not None):
        spans = _edit_spans(violation.fix, starts, len(text))
        if spans is None or any(_overlaps(s, taken) for s in spans):
            skipped.append(violation)
            continue
        taken.extend(spans)
        applied.append(violation)
    new_text = text
    for start, end, replacement in sorted(taken, reverse=True):
        new_text = new_text[:start] + replacement + new_text[end:]
    return new_text, applied, skipped


def plan_fixes(violations: Sequence[Violation]) -> FixPlan:
    """Group fixable violations per file and compute each rewrite."""
    by_path: Dict[str, List[Violation]] = {}
    for violation in fixable(violations):
        by_path.setdefault(violation.path, []).append(violation)
    plan = FixPlan()
    for path in sorted(by_path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                old_text = handle.read()
        except OSError:
            continue
        new_text, applied, skipped = apply_to_text(old_text, by_path[path])
        if new_text != old_text:
            plan.changes.append(FileChange(path=path, old_text=old_text,
                                           new_text=new_text,
                                           applied=applied,
                                           skipped=skipped))
    return plan


def write_changes(plan: FixPlan) -> List[str]:
    """Atomically rewrite every planned file; returns written paths."""
    written = []
    for change in plan.changes:
        directory = os.path.dirname(os.path.abspath(change.path))
        descriptor, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".repro-fix-", suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(change.new_text)
            os.replace(tmp_path, change.path)
        except OSError:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        written.append(change.path)
    return written


# -- fix constructors used by the rules -------------------------------

def wrap_call_fix(node, function: str, description: str) -> Optional[Fix]:
    """Wrap an expression node in ``function(...)`` via two insertions."""
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return Fix(description=description, edits=(
        Edit(line=node.lineno, col=node.col_offset,
             end_line=node.lineno, end_col=node.col_offset,
             text=f"{function}("),
        Edit(line=end_line, col=end_col, end_line=end_line,
             end_col=end_col, text=")"),
    ))


def append_argument_fix(call, argument: str,
                        description: str) -> Optional[Fix]:
    """Insert ``, argument`` after the last argument of a call node."""
    last = None
    for candidate in (*call.args, *[kw.value for kw in call.keywords]):
        if last is None or (candidate.end_lineno, candidate.end_col_offset) \
                > (last.end_lineno, last.end_col_offset):
            last = candidate
    if last is None or getattr(last, "end_lineno", None) is None:
        return None
    return Fix(description=description, edits=(
        Edit(line=last.end_lineno, col=last.end_col_offset,
             end_line=last.end_lineno, end_col=last.end_col_offset,
             text=f", {argument}"),
    ))


def insert_statement_fix(function_def, statement: str,
                         description: str) -> Optional[Fix]:
    """Insert a statement line before the first real body statement.

    A leading docstring is kept first; a body that is *only* a
    docstring offers no anchor whose indentation is trustworthy, so
    no fix is produced.
    """
    import ast

    body = function_def.body
    anchor_index = 0
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        anchor_index = 1
    if anchor_index >= len(body):
        return None
    anchor = body[anchor_index]
    indent = " " * anchor.col_offset
    return Fix(description=description, edits=(
        Edit(line=anchor.lineno, col=0, end_line=anchor.lineno,
             end_col=0, text=f"{indent}{statement}\n"),
    ))


def delete_span_fix(line: int, col: int, end_line: int, end_col: int,
                    description: str) -> Fix:
    return Fix(description=description, edits=(
        Edit(line=line, col=col, end_line=end_line, end_col=end_col,
             text=""),
    ))
