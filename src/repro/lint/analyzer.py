"""Analyzer driver: file collection, two-pass analysis, dispatch.

v2 runs whole-program analysis in two passes:

* **Pass 1** reduces every file to a :class:`ModuleSummary` (imports,
  function parameter/return units, mutable globals) and stitches them
  into a :class:`ProjectIndex` — the call graph the flow rules query.
* **Pass 2** walks each file once more, running the local rules
  (U0xx/D1xx/E2xx/F3xx) and the project rules (U1xx/P4xx/C5xx), the
  latter with the index in hand.

Both passes are incremental when a :class:`LintCache` is supplied:
summaries are keyed by file content, findings by file content plus
the project signature, so a warm re-lint of an unchanged tree parses
nothing at all.

Violations are filtered through each file's suppression index; a
line-level directive that matches no violation is itself reported
(``W001 unused-suppression``), so stale escapes cannot accumulate.
Results are returned sorted — the analyzer practices the determinism
it preaches.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.fix import delete_span_fix
from repro.lint.project import ProjectIndex, module_name_for
from repro.lint.registry import all_rules, get_rule
from repro.lint.summaries import ModuleSummary, summarize_module
from repro.lint.suppressions import ALL, SuppressionIndex
from repro.lint.violations import Violation

#: Bump on any behavior change that should invalidate cached results.
ANALYZER_VERSION = "3.0"

#: Directory names skipped while walking a directory argument.  Files
#: named explicitly on the command line are always linted — that is how
#: the test fixtures (which contain planted violations) are exercised
#: without failing the repository-wide gate.
EXCLUDED_DIR_NAMES = ("fixtures", "__pycache__", ".git")

SYNTAX_ERROR_RULE = "E999"
UNUSED_SUPPRESSION_RULE = "W001"


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen = set()
    collected: List[Path] = []

    def add(path: Path) -> None:
        key = str(path)
        if key not in seen:
            seen.add(key)
            collected.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in EXCLUDED_DIR_NAMES
                       for part in candidate.parts):
                    continue
                add(candidate)
        else:
            add(path)
    return collected


def _parse(source: str, path: str):
    """(tree, None) on success, (None, E999 violation) on failure."""
    try:
        return ast.parse(source, filename=path), None
    except SyntaxError as exc:
        return None, Violation(path=path, line=exc.lineno or 1,
                               col=(exc.offset or 1) - 1,
                               rule_id=SYNTAX_ERROR_RULE,
                               message=f"syntax error: {exc.msg}")


def _select_checkers(select: Optional[Iterable[str]]):
    if select is None:
        return list(all_rules().values())
    return [get_rule(rule_id) for rule_id in select]


def _run_checkers(tree: ast.Module, source: str, path: str,
                  checkers, index: Optional[ProjectIndex],
                  module: Optional[ModuleSummary]) -> List[Violation]:
    """Run pass 2 on one parsed file: rules + suppression filtering."""
    raw: List[Violation] = []
    checked_rules = set()
    for checker_cls in checkers:
        if not checker_cls.applies_to(path):
            continue
        checked_rules.add(checker_cls.rule_id)
        if getattr(checker_cls, "requires_index", False):
            checker = checker_cls(path, index=index, module=module)
        else:
            checker = checker_cls(path)
        checker.visit(tree)
        raw.extend(checker.violations)

    suppressions = SuppressionIndex.from_source(source)
    kept: List[Violation] = []
    used_lines = set()
    for violation in raw:
        line_rules = suppressions.line_rules.get(violation.line,
                                                frozenset())
        if ALL in line_rules or violation.rule_id in line_rules:
            used_lines.add(violation.line)
            continue
        if ALL in suppressions.file_rules \
                or violation.rule_id in suppressions.file_rules:
            continue
        kept.append(violation)

    for line, rules in suppressions.line_rules.items():
        if line in used_lines or UNUSED_SUPPRESSION_RULE in rules:
            continue
        # Judge a directive only when a rule it names actually ran
        # (under --select, suppressions for unselected rules are
        # outside this run's evidence).
        if ALL not in rules and not (rules & checked_rules):
            continue
        if ALL in suppressions.file_rules \
                or UNUSED_SUPPRESSION_RULE in suppressions.file_rules:
            continue
        listed = ",".join(sorted(rules))
        span = suppressions.line_spans.get(line)
        fix = None
        if span is not None:
            fix = delete_span_fix(line, span[0], line, span[1],
                                  "delete the unused suppression comment")
        kept.append(Violation(
            path=path, line=line, col=0,
            rule_id=UNUSED_SUPPRESSION_RULE,
            message=f"unused suppression: disable={listed} matches "
                    f"no violation on this line; delete it",
            fix=fix))
    return sorted(kept)


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None,
                index: Optional[ProjectIndex] = None,
                ) -> List[Violation]:
    """Lint one source string; ``select`` limits to the given rule ids.

    Without an ``index`` the project context is just this one file —
    cross-module rules then see only what the file itself defines.
    """
    tree, error = _parse(source, path)
    if error is not None:
        return [error]
    checkers = _select_checkers(select)
    module = summarize_module(tree, module_name_for(path), path)
    if index is None:
        index = ProjectIndex([module])
    return _run_checkers(tree, source, path, checkers, index, module)


def lint_file(path: Path,
              select: Optional[Iterable[str]] = None,
              index: Optional[ProjectIndex] = None) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select, index=index)


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               cache=None,
               report_only: Optional[Iterable[str]] = None
               ) -> List[Violation]:
    """Lint every Python file reachable from ``paths``, sorted."""
    return lint_files(collect_files(paths), select=select, cache=cache,
                      report_only=report_only)


def lint_files(files: Sequence[Path],
               select: Optional[Iterable[str]] = None,
               cache=None,
               report_only: Optional[Iterable[str]] = None
               ) -> List[Violation]:
    """Two-pass lint of an explicit file list.

    ``cache`` is a :class:`repro.lint.cache.LintCache` (or ``None``);
    with one, unchanged files are neither parsed nor re-checked.

    ``report_only`` restricts *pass 2* to the named files while the
    project index still covers everything — this is how
    ``tools/lint_changed.py`` lints a handful of changed files with
    full cross-module context but no full-tree rule run.
    """
    checkers = _select_checkers(select)
    select_key = ",".join(sorted(select)) if select is not None else "*"

    # Pass 1 — summaries (cached by file content).
    sources: Dict[str, str] = {}
    trees: Dict[str, ast.Module] = {}
    errors: Dict[str, Violation] = {}
    file_keys: Dict[str, str] = {}
    summaries: List[ModuleSummary] = []
    for file_path in files:
        path = str(file_path)
        source = file_path.read_text(encoding="utf-8")
        sources[path] = source
        if cache is not None:
            key = cache.file_key(path, source)
            file_keys[path] = key
            summary = cache.get_summary(key)
            if summary is not None:
                summaries.append(summary)
                continue
        tree, error = _parse(source, path)
        if error is not None:
            errors[path] = error
            summary = ModuleSummary(module=module_name_for(path),
                                    path=path)
        else:
            trees[path] = tree
            summary = summarize_module(tree, module_name_for(path), path)
        summaries.append(summary)
        if cache is not None:
            cache.put_summary(file_keys[path], summary)

    index = ProjectIndex(summaries)
    signature = f"{ANALYZER_VERSION}:{index.signature()}:{select_key}"
    reported = (None if report_only is None
                else {str(Path(p).resolve()) for p in report_only})

    # Pass 2 — rules (cached by file content + project signature).
    violations: List[Violation] = []
    for file_path in files:
        path = str(file_path)
        if reported is not None \
                and str(file_path.resolve()) not in reported:
            continue
        if cache is not None:
            cached = cache.get_results(file_keys[path], signature)
            if cached is not None:
                violations.extend(cached)
                continue
        if path in errors:
            found: List[Violation] = [errors[path]]
        else:
            tree = trees.get(path)
            if tree is None:  # summary came from cache; parse now
                tree, error = _parse(sources[path], path)
                if error is not None:
                    tree = None
                    found = [error]
            if tree is not None:
                found = _run_checkers(tree, sources[path], path,
                                      checkers, index,
                                      index.by_path.get(path))
        if cache is not None:
            cache.put_results(file_keys[path], signature, found)
        violations.extend(found)
    return sorted(violations)


def build_project_index(paths: Sequence[str]) -> ProjectIndex:
    """Pass 1 only: the project index for ``paths`` (for tooling)."""
    summaries: List[ModuleSummary] = []
    for file_path in collect_files(paths):
        path = str(file_path)
        tree, error = _parse(file_path.read_text(encoding="utf-8"), path)
        if error is not None:
            summaries.append(ModuleSummary(module=module_name_for(path),
                                           path=path))
        else:
            summaries.append(summarize_module(tree, module_name_for(path),
                                              path))
    return ProjectIndex(summaries)
