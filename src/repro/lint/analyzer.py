"""Analyzer driver: file collection, parsing, checker dispatch.

One parse per file; every registered checker walks the same tree.
Violations are filtered through the file's suppression index and
returned sorted, so output is byte-identical across runs and
platforms — the analyzer practices the determinism it preaches.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.registry import all_rules, get_rule
from repro.lint.suppressions import SuppressionIndex
from repro.lint.violations import Violation

#: Directory names skipped while walking a directory argument.  Files
#: named explicitly on the command line are always linted — that is how
#: the test fixtures (which contain planted violations) are exercised
#: without failing the repository-wide gate.
EXCLUDED_DIR_NAMES = ("fixtures", "__pycache__", ".git")

SYNTAX_ERROR_RULE = "E999"


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen = set()
    collected: List[Path] = []

    def add(path: Path) -> None:
        key = str(path)
        if key not in seen:
            seen.add(key)
            collected.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in EXCLUDED_DIR_NAMES
                       for part in candidate.parts):
                    continue
                add(candidate)
        else:
            add(path)
    return collected


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Lint one source string; ``select`` limits to the given rule ids."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 1,
                          col=(exc.offset or 1) - 1,
                          rule_id=SYNTAX_ERROR_RULE,
                          message=f"syntax error: {exc.msg}")]

    if select is None:
        checkers = list(all_rules().values())
    else:
        checkers = [get_rule(rule_id) for rule_id in select]

    suppressions = SuppressionIndex.from_source(source)
    violations: List[Violation] = []
    for checker_cls in checkers:
        if not checker_cls.applies_to(path):
            continue
        checker = checker_cls(path)
        checker.visit(tree)
        violations.extend(
            v for v in checker.violations
            if not suppressions.suppresses(v.rule_id, v.line)
        )
    return sorted(violations)


def lint_file(path: Path,
              select: Optional[Iterable[str]] = None) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select)


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Lint every Python file reachable from ``paths``, sorted."""
    violations: List[Violation] = []
    for path in collect_files(paths):
        violations.extend(lint_file(path, select=select))
    return sorted(violations)
