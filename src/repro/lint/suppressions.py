"""``# repro-lint: disable=RULE`` suppression comments.

Two scopes, distinguished by comment placement:

* **Line** — a trailing comment on a line of code suppresses the listed
  rules for violations reported on that physical line::

      if rate == 0.0:  # repro-lint: disable=F301

* **File** — a comment on a line of its own suppresses the listed rules
  for the whole file (the "per-file" escape hatch for modules with a
  documented reason to break a rule)::

      # repro-lint: disable=D102

``disable=all`` suppresses every rule in the given scope.  Rule lists
are comma-separated: ``disable=U001,F301``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)"
)

ALL = "all"


@dataclass
class SuppressionIndex:
    """Parsed suppression directives for one source file."""

    file_rules: FrozenSet[str] = frozenset()
    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: For line-scoped directives whose comment is *only* the
    #: directive: ``line -> (delete_from_col, delete_to_col)``, the
    #: span covering the comment plus the whitespace before it.  This
    #: is what lets W001 offer a mechanical deletion.
    line_spans: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        file_rules: Set[str] = set()
        line_rules: Dict[int, Set[str]] = {}
        line_spans: Dict[int, Tuple[int, int]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(token.string)
                if not match:
                    continue
                rules = {part.strip() for part in match.group(1).split(",")}
                line_no = token.start[0]
                prefix = token.line[:token.start[1]]
                if prefix.strip():
                    line_rules.setdefault(line_no, set()).update(rules)
                    if token.string.strip() == match.group(0).strip():
                        line_spans[line_no] = (
                            len(prefix.rstrip()),
                            token.start[1] + len(token.string),
                        )
                else:
                    file_rules.update(rules)
        except tokenize.TokenizeError:
            pass  # unparseable files produce a syntax-error violation anyway
        return cls(
            file_rules=frozenset(file_rules),
            line_rules={line: frozenset(rules)
                        for line, rules in line_rules.items()},
            line_spans=line_spans,
        )

    def suppresses(self, rule_id: str, line: int) -> bool:
        if ALL in self.file_rules or rule_id in self.file_rules:
            return True
        rules = self.line_rules.get(line, frozenset())
        return ALL in rules or rule_id in rules
