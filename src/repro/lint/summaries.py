"""Per-module summaries: pass 1 of the whole-program analyzer.

One parse of a file produces a :class:`ModuleSummary` — everything the
cross-file rules need to know about the module *without* re-reading
it: its import aliases, the functions it defines (with per-parameter
unit tokens and a classification of every ``return`` expression), the
dataclass constructors it declares, and which module-level names are
bound to mutable objects.

Summaries are plain data and serialize to JSON (:meth:`to_dict` /
:meth:`from_dict`), which is what makes the incremental cache work:
a warm run rebuilds the project index from cached summaries without
parsing a single unchanged file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.astutils import dotted_name, terminal_name
from repro.lint.effects import EffectSummary, effects_of
from repro.lint.unitlex import unit_of_attr, unit_of_name, unit_of_param

#: Builtins that pass their argument's unit through unchanged.
PASSTHROUGH_CALLS = ("int", "round", "abs", "max", "min", "float")

#: ``repro.units`` helpers with a fixed return unit.
INTRINSIC_RETURN_UNITS: Dict[str, str] = {
    "us": "ps", "ms": "ps", "ns": "ps",
    "ps_to_us": "us", "ps_to_ms": "ms",
    "bandwidth_mbps": "mbps", "theoretical_bandwidth_mbps": "mbps",
}

#: Module-level value expressions considered mutable state.
_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = ("list", "dict", "set", "defaultdict", "deque",
                      "Counter", "OrderedDict")


@dataclass(frozen=True)
class ParamInfo:
    """One parameter: its name and inferred unit token."""

    name: str
    unit: Optional[str] = None

    def to_dict(self) -> dict:
        return {"name": self.name, "unit": self.unit}

    @staticmethod
    def from_dict(data: dict) -> "ParamInfo":
        return ParamInfo(name=data["name"], unit=data["unit"])


@dataclass(frozen=True)
class FunctionSummary:
    """What the cross-file rules know about one function.

    ``returns`` classifies every ``return <expr>`` statement as one of
    ``("unit", token)``, ``("call", name)``, ``("const", None)`` or
    ``("unknown", None)`` — the project index resolves the ``call``
    entries through the call graph (fixed point), giving each function
    a final ``return_unit``.
    """

    name: str
    qualname: str
    line: int
    kind: str  # "function" | "method" | "classmethod" | "dataclass"
    params: Tuple[ParamInfo, ...]
    returns: Tuple[Tuple[str, Optional[str]], ...] = ()
    global_reads: Tuple[str, ...] = ()
    is_nested: bool = False
    effects: EffectSummary = EffectSummary()

    @property
    def explicit_params(self) -> Tuple[ParamInfo, ...]:
        """Parameters minus the implicit ``self``/``cls`` receiver."""
        if self.kind in ("method", "classmethod") and self.params:
            return self.params[1:]
        return self.params

    def returns_only_constants(self) -> bool:
        return bool(self.returns) and all(kind == "const"
                                          for kind, _ in self.returns)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "qualname": self.qualname,
            "line": self.line,
            "kind": self.kind,
            "params": [param.to_dict() for param in self.params],
            "returns": [list(entry) for entry in self.returns],
            "global_reads": list(self.global_reads),
            "is_nested": self.is_nested,
            "effects": self.effects.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "FunctionSummary":
        return FunctionSummary(
            name=data["name"],
            qualname=data["qualname"],
            line=data["line"],
            kind=data["kind"],
            params=tuple(ParamInfo.from_dict(p) for p in data["params"]),
            returns=tuple((kind, value) for kind, value in data["returns"]),
            global_reads=tuple(data["global_reads"]),
            is_nested=data["is_nested"],
            effects=EffectSummary.from_dict(data["effects"]),
        )


@dataclass
class ModuleSummary:
    """Pass-1 knowledge about one module."""

    module: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    mutable_globals: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "imports": dict(sorted(self.imports.items())),
            "functions": {qualname: summary.to_dict()
                          for qualname, summary
                          in sorted(self.functions.items())},
            "mutable_globals": list(self.mutable_globals),
        }

    @staticmethod
    def from_dict(data: dict) -> "ModuleSummary":
        return ModuleSummary(
            module=data["module"],
            path=data["path"],
            imports=dict(data["imports"]),
            functions={qualname: FunctionSummary.from_dict(raw)
                       for qualname, raw in data["functions"].items()},
            mutable_globals=tuple(data["mutable_globals"]),
        )


def static_unit(node: ast.AST) -> Optional[str]:
    """Environment-free unit of an expression (name/attr conventions).

    This is the pass-1 approximation: no variable tracking, just the
    naming conventions plus the handful of ``repro.units`` intrinsics.
    The flow rules in pass 2 layer assignment tracking on top.
    """
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_attr(node.attr)
    if isinstance(node, ast.UnaryOp):
        return static_unit(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = static_unit(node.left)
            right = static_unit(node.right)
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        if isinstance(node.op, (ast.Mult, ast.FloorDiv)):
            left = static_unit(node.left)
            right = static_unit(node.right)
            if left is not None and right is None \
                    and _is_number(node.right):
                return left
            if right is not None and left is None \
                    and _is_number(node.left):
                return right
        return None
    if isinstance(node, ast.IfExp):
        body = static_unit(node.body)
        orelse = static_unit(node.orelse)
        return body if body == orelse else None
    if isinstance(node, ast.Call):
        callee = terminal_name(node.func)
        if callee in INTRINSIC_RETURN_UNITS:
            return INTRINSIC_RETURN_UNITS[callee]
        if callee in PASSTHROUGH_CALLS and node.args:
            units = {static_unit(arg) for arg in node.args}
            units.discard(None)
            if len(units) == 1:
                return units.pop()
        return None
    return None


def _is_number(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def _classify_return(value: Optional[ast.AST]
                     ) -> Tuple[str, Optional[str]]:
    if value is None or (isinstance(value, ast.Constant)
                         and not isinstance(value.value, bool)):
        return ("const", None)
    unit = static_unit(value)
    if unit is not None:
        return ("unit", unit)
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func)
        if callee is not None:
            return ("call", callee)
    return ("unknown", None)


class _GlobalReadCollector(ast.NodeVisitor):
    """Names a function loads that it never binds itself."""

    def __init__(self) -> None:
        self.loaded: List[str] = []
        self.bound: set = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded.append(node.id)
        else:
            self.bound.add(node.id)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.add(node.name)
        self._bind_args(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._bind_args(node)
        self.generic_visit(node)

    def _bind_args(self, node: ast.AST) -> None:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.bound.add(arg.arg)
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                self.bound.add(arg.arg)

    def reads(self) -> Tuple[str, ...]:
        seen = []
        for name in self.loaded:
            if name not in self.bound and name not in seen:
                seen.append(name)
        return tuple(sorted(seen))


def _summarize_function(node: ast.AST, qualname: str, kind: str,
                        nested: bool) -> FunctionSummary:
    params: List[ParamInfo] = []
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        params.append(ParamInfo(name=arg.arg,
                                unit=unit_of_param(arg.arg)))

    returns: List[Tuple[str, Optional[str]]] = []

    def collect_returns(stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes own their returns
            if isinstance(stmt, ast.Return):
                returns.append(_classify_return(stmt.value))
                continue
            for attr in ("body", "orelse", "finalbody", "handlers"):
                block = getattr(stmt, attr, None)
                if not block:
                    continue
                for item in block:
                    if isinstance(item, ast.excepthandler):
                        collect_returns(item.body)
                    else:
                        collect_returns([item])

    collect_returns(node.body)

    collector = _GlobalReadCollector()
    collector._bind_args(node)
    for stmt in node.body:
        collector.visit(stmt)

    return FunctionSummary(
        name=node.name,
        qualname=qualname,
        line=node.lineno,
        kind=kind,
        params=tuple(params),
        returns=tuple(returns),
        global_reads=collector.reads(),
        is_nested=nested,
        effects=effects_of(node, tuple(p.name for p in params)),
    )


def _function_kind(node: ast.AST, in_class: bool) -> str:
    decorators = {terminal_name(dec) if not isinstance(dec, ast.Call)
                  else terminal_name(dec.func)
                  for dec in node.decorator_list}
    if not in_class:
        return "function"
    if "staticmethod" in decorators:
        return "function"
    if "classmethod" in decorators:
        return "classmethod"
    return "method"


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if terminal_name(target) == "dataclass":
            return True
    return False


def _dataclass_ctor(node: ast.ClassDef, qualname: str
                    ) -> Optional[FunctionSummary]:
    params: List[ParamInfo] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            name = stmt.target.id
            if name.startswith("_") or _is_classvar(stmt.annotation):
                continue
            params.append(ParamInfo(name=name, unit=unit_of_param(name)))
    if not params:
        return None
    return FunctionSummary(
        name=node.name,
        qualname=qualname,
        line=node.lineno,
        kind="dataclass",
        params=tuple(params),
    )


def _is_classvar(annotation: ast.AST) -> bool:
    if isinstance(annotation, ast.Subscript):
        return terminal_name(annotation.value) == "ClassVar"
    return terminal_name(annotation) == "ClassVar"


def summarize_module(tree: ast.Module, module: str,
                     path: str) -> ModuleSummary:
    """Build the pass-1 summary of one parsed module."""
    summary = ModuleSummary(module=module, path=path)
    mutable: List[str] = []

    def visit_body(body, prefix: str, in_class: bool,
                   nested: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{stmt.name}"
                kind = _function_kind(stmt, in_class)
                summary.functions[qualname] = _summarize_function(
                    stmt, qualname, kind, nested)
                visit_body(stmt.body, qualname, in_class=False,
                           nested=True)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}.{stmt.name}"
                if _is_dataclass(stmt):
                    ctor = _dataclass_ctor(stmt, qualname)
                    if ctor is not None:
                        summary.functions[qualname] = ctor
                visit_body(stmt.body, qualname, in_class=True,
                           nested=nested)

    visit_body(tree.body, module, in_class=False, nested=False)

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                summary.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom) and stmt.module \
                and stmt.level == 0:
            for alias in stmt.names:
                local = alias.asname or alias.name
                summary.imports[local] = f"{stmt.module}.{alias.name}"
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) \
                        and _is_mutable_value(stmt.value):
                    mutable.append(target.id)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None \
                    and _is_mutable_value(stmt.value):
                mutable.append(stmt.target.id)

    summary.mutable_globals = tuple(sorted(set(mutable)))
    return summary


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in _MUTABLE_FACTORIES
    return False
