"""``repro.lint`` — project-wide simulation-safety static analysis.

The Python type system cannot see the invariants this reproduction
rests on: integer-picosecond time, :class:`repro.units.Frequency` for
all clock math, bit-exact determinism, and kernel-owned event dispatch.
This package checks them statically, with project-specific rules, and
backs the ``python -m repro lint`` CLI plus the CI gate.

v3 is a two-pass whole-program analyzer: pass 1 builds a
:class:`~repro.lint.project.ProjectIndex` (imports, call graph,
per-function unit summaries, interprocedural mutation/escape effect
summaries), pass 2 runs local rules plus flow-sensitive project rules
(cross-function unit propagation, sweep process-safety, cache-key
purity, scheduled-callback race detection, accel backend-contract
conformance) against it.  Rules may attach mechanically safe fixes,
applied with ``--fix`` or previewed with ``--show-fixes``.  An
incremental cache makes warm re-lints near-instant, and a checked-in
baseline lets new rules land without blocking the tree.

Typical use::

    from repro.lint import lint_paths
    violations = lint_paths(["src"])

Suppress a rule on one line with a trailing ``# repro-lint:
disable=RULE`` comment, or for a whole file with the same comment on a
line of its own.  See ``docs/static_analysis.md`` for the rule catalog.
"""

from repro.lint.analyzer import (
    build_project_index,
    collect_files,
    lint_file,
    lint_files,
    lint_paths,
    lint_source,
)
from repro.lint.baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import LintCache
from repro.lint.effects import EffectSummary, ResolvedEffects
from repro.lint.fix import FixPlan, plan_fixes, write_changes
from repro.lint.project import ProjectIndex
from repro.lint.registry import (
    Checker,
    ProjectChecker,
    all_rules,
    get_rule,
    register,
)
from repro.lint.reporters import (
    format_json,
    format_rule_listing,
    format_sarif,
    format_text,
)
from repro.lint.violations import Edit, Fix, Violation

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "Edit",
    "EffectSummary",
    "Fix",
    "FixPlan",
    "LintCache",
    "ProjectChecker",
    "ProjectIndex",
    "ResolvedEffects",
    "Violation",
    "all_rules",
    "apply_baseline",
    "build_project_index",
    "collect_files",
    "format_json",
    "format_rule_listing",
    "format_sarif",
    "format_text",
    "get_rule",
    "lint_file",
    "lint_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "plan_fixes",
    "register",
    "write_baseline",
    "write_changes",
]
