"""``repro.lint`` — AST-based simulation-safety analyzer.

The Python type system cannot see the invariants this reproduction
rests on: integer-picosecond time, :class:`repro.units.Frequency` for
all clock math, bit-exact determinism, and kernel-owned event dispatch.
This package checks them statically, with project-specific rules, and
backs the ``python -m repro lint`` CLI plus the CI gate.

Typical use::

    from repro.lint import lint_paths
    violations = lint_paths(["src"])

Suppress a rule on one line with a trailing ``# repro-lint:
disable=RULE`` comment, or for a whole file with the same comment on a
line of its own.  See ``docs/static_analysis.md`` for the rule catalog.
"""

from repro.lint.analyzer import (
    collect_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.registry import Checker, all_rules, get_rule, register
from repro.lint.reporters import format_json, format_rule_listing, format_text
from repro.lint.violations import Violation

__all__ = [
    "Checker",
    "Violation",
    "all_rules",
    "collect_files",
    "format_json",
    "format_rule_listing",
    "format_text",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
