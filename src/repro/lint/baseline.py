"""Checked-in baseline: known-legacy findings, explicitly suppressed.

New rules land with their pre-existing findings recorded here instead
of blocking the tree — but every entry must carry a one-line
justification, and entries *expire*: a baseline line that no longer
matches any finding is itself reported (``W002 stale-baseline-entry``)
so the file can only shrink.

Matching is line-number-free on purpose — ``(path, rule, message)``
with an occurrence ``count`` — so unrelated edits moving code around
do not churn the baseline.  Paths are normalized to posix relative
form before comparison.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.violations import Violation

BASELINE_VERSION = 1
STALE_BASELINE_RULE = "W002"

#: Default baseline file name, looked up in the working directory.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed (a usage error, exit code 2)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding with its reason for existing."""

    path: str
    rule: str
    message: str
    count: int
    justification: str

    def key(self) -> Tuple[str, str, str]:
        return (normalize_path(self.path), self.rule, self.message)


def normalize_path(path: str) -> str:
    """Posix form relative to the working directory.

    Lint may be invoked with absolute or relative paths; the baseline
    always stores repo-relative posix paths, so both spellings of the
    same file must normalize identically.
    """
    if os.path.isabs(path):
        path = os.path.relpath(path)
    return PurePosixPath(os.path.normpath(path)).as_posix()


def load_baseline(path: str) -> List[BaselineEntry]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise BaselineError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: "
                            f"{exc}") from None
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(f"baseline {path}: expected an object with "
                            f"version {BASELINE_VERSION}")
    entries: List[BaselineEntry] = []
    for raw in payload.get("entries", []):
        try:
            entry = BaselineEntry(
                path=raw["path"], rule=raw["rule"],
                message=raw["message"],
                count=int(raw.get("count", 1)),
                justification=raw["justification"])
        except (KeyError, TypeError) as exc:
            raise BaselineError(f"baseline {path}: malformed entry "
                                f"{raw!r} ({exc})") from None
        if not entry.justification.strip():
            raise BaselineError(f"baseline {path}: entry for "
                                f"{entry.path} / {entry.rule} has an "
                                f"empty justification")
        if entry.count < 1:
            raise BaselineError(f"baseline {path}: entry for "
                                f"{entry.path} / {entry.rule} has "
                                f"count < 1")
        entries.append(entry)
    return entries


def write_baseline(path: str, violations: Sequence[Violation],
                   justification: str = "FIXME: justify or fix",
                   ) -> int:
    """Serialize current findings as a fresh baseline; returns count."""
    grouped: Dict[Tuple[str, str, str], int] = {}
    for violation in violations:
        key = (normalize_path(violation.path), violation.rule_id,
               violation.message)
        grouped[key] = grouped.get(key, 0) + 1
    entries = [
        {"path": vpath, "rule": rule, "message": message,
         "count": count, "justification": justification}
        for (vpath, rule, message), count in sorted(grouped.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def apply_baseline(violations: Sequence[Violation],
                   entries: Sequence[BaselineEntry],
                   baseline_path: str,
                   checked_paths: Optional[Set[str]] = None,
                   checked_rules: Optional[Set[str]] = None,
                   ) -> List[Violation]:
    """Filter baselined findings; report entries that matched nothing.

    Returns the violations that survive: findings not in the baseline
    (or beyond an entry's ``count``), plus one ``W002`` per stale
    entry — the expiry mechanism that keeps the baseline shrinking.

    Staleness is only judged on this run's evidence: an entry whose
    file is outside ``checked_paths`` (normalized) or whose rule is
    outside ``checked_rules`` was not re-examined, so it is left
    alone.  Pass ``None`` (the default) for "everything was checked".
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        budget[entry.key()] = budget.get(entry.key(), 0) + entry.count

    remaining: List[Violation] = []
    for violation in violations:
        key = (normalize_path(violation.path), violation.rule_id,
               violation.message)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            remaining.append(violation)

    for entry in entries:
        if checked_paths is not None \
                and normalize_path(entry.path) not in checked_paths:
            continue
        if checked_rules is not None \
                and entry.rule not in checked_rules:
            continue
        if budget.get(entry.key(), 0) > 0:
            budget[entry.key()] = 0
            remaining.append(Violation(
                path=baseline_path, line=1, col=0,
                rule_id=STALE_BASELINE_RULE,
                message=f"stale baseline entry: {entry.rule} at "
                        f"{entry.path} ({entry.message!r}) matches "
                        f"fewer findings than its count; shrink or "
                        f"remove it"))
    return sorted(remaining)
