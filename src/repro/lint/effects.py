"""Interprocedural effect-and-alias summaries (pass 1 of v3).

Every function body is reduced to an :class:`EffectSummary` — which of
its *roots* it mutates, reads, or lets escape, and which calls it
makes with roots bound to arguments.  A root is one of:

* a **parameter** (mutating ``stats.append(...)`` mutates the caller's
  object — the aliasing Python cannot type-check),
* a ``self.<attr>`` slot (state shared by every scheduled callback of
  the same object),
* a **free name** — a module-level binding, significant when the
  owning module declares it mutable.

Summaries are *local* facts only; :class:`repro.lint.project
.ProjectIndex` propagates them through the call graph to a fixed
point (``helper(x)`` that appends to its parameter makes the caller a
mutator of whatever it passed), exactly as it already does for return
units.  The race rules (R7xx) consume the propagated view.

Encoding: roots are serialized as short tagged strings — ``"p:name"``
(parameter), ``"s:attr"`` (self attribute), ``"f:name"`` (free name)
— so summaries stay plain JSON for the incremental cache.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.lint.astutils import dotted_name

#: Method names that mutate their receiver in place.  Conservative on
#: purpose: a name here must *always* mean in-place mutation on the
#: builtin containers / deques / dicts this codebase schedules around.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popleft", "popitem", "remove", "reverse",
    "setdefault", "sort", "update", "write", "writelines",
})

#: Classes whose self-mutations *are* the ordering mechanism, not a
#: hazard: triggering an :class:`repro.sim.signal.Event` (or driving a
#: ``Signal``) is how processes establish happens-before in this
#: codebase, so flagging it as an unordered write would condemn every
#: correctly synchronized handshake.  The index drops self effects of
#: methods defined on these classes before propagation.
SYNC_CLASSES = frozenset({"Event", "Signal"})

#: Root-key tags (see module docstring).
PARAM, SELF, FREE = "p", "s", "f"


def root_key(tag: str, name: str) -> str:
    return f"{tag}:{name}"


def split_root(key: str) -> Tuple[str, str]:
    tag, _, name = key.partition(":")
    return tag, name


@dataclass(frozen=True)
class CallEdge:
    """One call made by a function, with roots bound to arguments.

    ``receiver`` is the root the method is called on (``"self"`` for
    ``self.m()``, a root key for ``param.m()``), ``args`` maps each
    positional argument to the root key it passes (``None`` for
    anything that is not a plain root).  The project index resolves
    ``name`` and translates the callee's effects back through this
    binding.
    """

    name: str
    line: int
    receiver: Optional[str] = None
    args: Tuple[Optional[str], ...] = ()

    def to_list(self) -> list:
        return [self.name, self.line, self.receiver, list(self.args)]

    @staticmethod
    def from_list(data: list) -> "CallEdge":
        return CallEdge(name=data[0], line=data[1], receiver=data[2],
                        args=tuple(data[3]))


@dataclass(frozen=True)
class EffectSummary:
    """Local (un-propagated) effects of one function body."""

    #: Root keys mutated in place or rebound (``s:``/``p:``/``f:``).
    mutates: Tuple[str, ...] = ()
    #: Free roots whose *only* writes are membership-guarded subscript
    #: fills (``CACHE.get(k)`` / ``k in CACHE`` plus ``CACHE[k] = v``)
    #: — the idempotent memo-cache idiom, whose fill order cannot
    #: change results.  Kept apart from :attr:`mutates` so race rules
    #: can stay silent on it without losing real global mutations.
    memo_fills: Tuple[str, ...] = ()
    #: ``self.<attr>`` slots read (Load context or AugAssign target).
    self_reads: Tuple[str, ...] = ()
    #: Parameters stored into ``self`` slots or free containers —
    #: the object outlives the call and is reachable later.
    escapes: Tuple[str, ...] = ()
    #: Calls with root-to-argument bindings, for propagation.
    calls: Tuple[CallEdge, ...] = ()

    def to_dict(self) -> dict:
        return {
            "mutates": list(self.mutates),
            "memo_fills": list(self.memo_fills),
            "self_reads": list(self.self_reads),
            "escapes": list(self.escapes),
            "calls": [edge.to_list() for edge in self.calls],
        }

    @staticmethod
    def from_dict(data: dict) -> "EffectSummary":
        return EffectSummary(
            mutates=tuple(data["mutates"]),
            memo_fills=tuple(data["memo_fills"]),
            self_reads=tuple(data["self_reads"]),
            escapes=tuple(data["escapes"]),
            calls=tuple(CallEdge.from_list(raw) for raw in data["calls"]),
        )


class _EffectCollector(ast.NodeVisitor):
    """Single walk of one function body collecting local effects.

    Nested function and lambda bodies are *excluded*: their effects
    happen when they run, not when this function runs — nested defs
    get their own summaries, and the race rules analyze scheduled
    lambdas at the scheduling site.
    """

    def __init__(self, params: Set[str]) -> None:
        self.params = params
        self.bound: Set[str] = set(params)
        self.globals_declared: Set[str] = set()
        self.mutates: Set[str] = set()
        self.fills: Set[str] = set()    # free roots with G[k] = v stores
        self.guarded: Set[str] = set()  # free roots with get()/`in` tests
        self.self_reads: Set[str] = set()
        self.escapes: Set[str] = set()
        self.calls: List[CallEdge] = []

    # -- scope boundaries ---------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.add(node.name)  # body not visited: separate scope

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # runs later, not here

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    visit_Nonlocal = visit_Global

    # -- root classification ------------------------------------------

    def _root_of(self, node: ast.AST) -> Optional[str]:
        """Root key of the *base object* an expression denotes.

        ``self.attr[...]`` and deeper attribute paths all resolve to
        the first step from the root: mutating ``self.grid.cells``
        mutates state reachable from ``self.grid``.
        """
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            parent = node.value
            if isinstance(parent, ast.Name) and parent.id == "self" \
                    and isinstance(node, ast.Attribute):
                return root_key(SELF, node.attr)
            node = parent
        if isinstance(node, ast.Name):
            name = node.id
            if name == "self":
                return None  # bare self never mutated as a whole
            if name in self.params:
                return root_key(PARAM, name)
            if name in self.bound and name not in self.globals_declared:
                return None  # plain local
            return root_key(FREE, name)
        return None

    def _mark_mutated(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            # A plain rebind is a local unless declared global.
            if target.id in self.globals_declared:
                self.mutates.add(root_key(FREE, target.id))
            else:
                self.bound.add(target.id)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mark_mutated(element)
            return
        root = self._root_of(target)
        if root is not None:
            self.mutates.add(root)

    # -- statements and expressions -----------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            # ``NAME[key] = value`` on a free container is a candidate
            # memo fill; anything deeper or different is a mutation.
            if isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Name):
                root = self._root_of(target.value)
                if root is not None and root.startswith(FREE + ":"):
                    self.fills.add(root)
                    self._note_escape(target, node.value)
                    continue
            self._mark_mutated(target)
            self._note_escape(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._mark_mutated(node.target)
        if node.value is not None:
            self._note_escape(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mark_mutated(node.target)
        root = self._root_of(node.target)
        if root is not None and root.startswith(SELF + ":"):
            self.self_reads.add(split_root(root)[1])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._mark_mutated(target)
        self.generic_visit(node)

    def _note_escape(self, target: ast.AST, value: ast.AST) -> None:
        """``self.x = param`` / ``FREE[k] = param``: the param escapes."""
        if not isinstance(value, ast.Name) \
                or value.id not in self.params:
            return
        root = self._root_of(target)
        if root is not None and not root.startswith(PARAM + ":"):
            self.escapes.add(value.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            self.self_reads.add(node.attr)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)) \
                    and isinstance(comparator, ast.Name):
                root = self._root_of(comparator)
                if root is not None and root.startswith(FREE + ":"):
                    self.guarded.add(root)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "get" \
                and isinstance(func.value, ast.Name):
            root = self._root_of(func.value)
            if root is not None and root.startswith(FREE + ":"):
                self.guarded.add(root)
        if isinstance(func, ast.Attribute) \
                and func.attr in MUTATOR_METHODS:
            root = self._root_of(func.value)
            if root is not None:
                self.mutates.add(root)
                # ``container.append(param)``: the argument escapes
                # into state that outlives this call.
                if not root.startswith(PARAM + ":"):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) \
                                and arg.id in self.params:
                            self.escapes.add(arg.id)
        self._record_edge(node)
        self.generic_visit(node)

    def _record_edge(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        receiver: Optional[str] = None
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if isinstance(base, ast.Name) and base.id == "self":
                receiver = "self"
            else:
                receiver = self._root_of(base)
        args = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                break  # later positions are unknowable
            if isinstance(arg, ast.Name) and arg.id != "self":
                args.append(self._root_of(arg))
            else:
                args.append(None)
        self.calls.append(CallEdge(name=name, line=node.lineno,
                                   receiver=receiver, args=tuple(args)))


def effects_of(node: ast.AST, param_names: Tuple[str, ...]
               ) -> EffectSummary:
    """The :class:`EffectSummary` of one function definition node."""
    collector = _EffectCollector(set(param_names))
    for stmt in node.body:
        collector.visit(stmt)
    # A subscript fill is only memo-shaped when the function also
    # tests membership first and never mutates the root another way.
    memo = {root for root in collector.fills
            if root in collector.guarded
            and root not in collector.mutates}
    mutates = collector.mutates | (collector.fills - memo)
    return EffectSummary(
        mutates=tuple(sorted(mutates)),
        memo_fills=tuple(sorted(memo)),
        self_reads=tuple(sorted(collector.self_reads)),
        escapes=tuple(sorted(collector.escapes)),
        calls=tuple(collector.calls),
    )


@dataclass
class ResolvedEffects:
    """Call-graph-propagated effects of one function (index view).

    Unlike :class:`EffectSummary` this is *absolute*: free-name
    mutations and reads are qualified to ``module.name`` and filtered
    to names the owning module actually binds to mutable objects, so a
    rule can compare roots across modules without re-deriving context.
    """

    mutated_params: Set[str] = field(default_factory=set)
    mutated_self: Set[str] = field(default_factory=set)
    mutated_globals: Set[str] = field(default_factory=set)
    #: Globals touched only through the idempotent memo-fill idiom;
    #: shared, but order-independent — race rules leave them alone.
    memo_globals: Set[str] = field(default_factory=set)
    self_reads: Set[str] = field(default_factory=set)
    global_reads: Set[str] = field(default_factory=set)
    escaped_params: Set[str] = field(default_factory=set)

    def snapshot(self) -> Tuple[frozenset, ...]:
        return (frozenset(self.mutated_params),
                frozenset(self.mutated_self),
                frozenset(self.mutated_globals),
                frozenset(self.memo_globals),
                frozenset(self.self_reads),
                frozenset(self.global_reads),
                frozenset(self.escaped_params))

    def mutates_anything(self) -> bool:
        return bool(self.mutated_params or self.mutated_self
                    or self.mutated_globals)


