"""Flow-sensitive unit inference inside one function body.

:class:`FlowChecker` is the base the U1xx rules share: it walks a
module, maintains the lexical context (enclosing class, enclosing
function) and a per-function *unit environment* — variable name ->
unit token — updated at every assignment in statement order.  A rule
subclasses it and overrides the ``check_*`` hooks; :meth:`infer`
answers "what unit does this expression carry?" using, in order:

1. the environment (assignments seen so far in this function),
2. naming conventions (``_ps`` suffixes, ``hertz`` attributes),
3. the project index (calls resolve to their callee's propagated
   return unit; ``repro.units`` intrinsics are built in).

Inference is deliberately conservative: any construction it cannot
prove a unit for is ``None``, and rules only fire when *both* sides
of a conflict are known.  Branches are not merged — later assignments
simply overwrite — which trades a little precision for a linear,
allocation-light walk.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lint.registry import ProjectChecker
from repro.lint.astutils import dotted_name, terminal_name
from repro.lint.summaries import (
    INTRINSIC_RETURN_UNITS,
    PASSTHROUGH_CALLS,
    FunctionSummary,
)
from repro.lint.unitlex import unit_of_attr, unit_of_name, unit_of_param


class FlowChecker(ProjectChecker):
    """Scope-tracking walker with a per-function unit environment."""

    def __init__(self, path: str, index=None, module=None) -> None:
        super().__init__(path, index=index, module=module)
        self._class_stack: List[str] = []
        self._env_stack: List[Dict[str, Optional[str]]] = []

    # -- lexical scope ------------------------------------------------

    @property
    def enclosing_class(self) -> Optional[str]:
        return self._class_stack[-1] if self._class_stack else None

    @property
    def env(self) -> Dict[str, Optional[str]]:
        return self._env_stack[-1] if self._env_stack else {}

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        env: Dict[str, Optional[str]] = {}
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            env[arg.arg] = unit_of_param(arg.arg)
        self._env_stack.append(env)
        self.enter_function(node)
        for stmt in node.body:
            self.visit(stmt)
        self.leave_function(node)
        self._env_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- environment updates ------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if not self._env_stack:
            return
        unit = self.infer(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = unit

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if self._env_stack and isinstance(node.target, ast.Name):
            if node.value is not None:
                self.env[node.target.id] = self.infer(node.value)
            else:
                self.env[node.target.id] = unit_of_name(node.target.id)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.check_augassign(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.check_call(node)
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self.check_binop(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self.check_compare(node)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        self.check_return(node)
        self.generic_visit(node)

    # -- hooks for rules ----------------------------------------------

    def enter_function(self, node: ast.AST) -> None:
        pass

    def leave_function(self, node: ast.AST) -> None:
        pass

    def check_call(self, node: ast.Call) -> None:
        pass

    def check_binop(self, node: ast.BinOp) -> None:
        pass

    def check_compare(self, node: ast.Compare) -> None:
        pass

    def check_augassign(self, node: ast.AugAssign) -> None:
        pass

    def check_return(self, node: ast.Return) -> None:
        pass

    # -- resolution and inference -------------------------------------

    def resolve_call(self, node: ast.Call) -> Optional[FunctionSummary]:
        if self.index is None:
            return None
        return self.index.resolve(self.module, dotted_name(node.func),
                                  self.enclosing_class)

    def infer(self, node: ast.AST) -> Optional[str]:
        """Unit token of an expression, or ``None`` if unprovable."""
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_attr(node.attr)
        if isinstance(node, (ast.Subscript, ast.Starred)):
            # ``sizes_kb[i]`` carries the element unit of the
            # container name.
            return self.infer(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[str]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        # Mult/FloorDiv/Div are conversion boundaries: multiplying a
        # unit-carrying value by a literal is how this codebase changes
        # scale (``frame_words * 4`` -> bytes, ``ms * 1000`` -> us), so
        # inference must not carry the old unit across it.
        return None

    def _infer_call(self, node: ast.Call) -> Optional[str]:
        callee = terminal_name(node.func)
        if callee in INTRINSIC_RETURN_UNITS:
            return INTRINSIC_RETURN_UNITS[callee]
        if callee in PASSTHROUGH_CALLS and node.args:
            units = {self.infer(arg) for arg in node.args}
            units.discard(None)
            if len(units) == 1:
                return units.pop()
            return None
        summary = self.resolve_call(node)
        if summary is not None and self.index is not None:
            return self.index.return_unit_of(summary)
        return None
