"""Exception hierarchy for the UPaRC reproduction library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one base class to handle any library failure.  The
subclasses mirror the major subsystems: simulation kernel, bitstream
handling, compression codecs, hardware component models, and controller
protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class AccelError(ReproError):
    """A datapath backend could not be selected or loaded."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    was already finalized, or a process that violates kernel invariants.
    """


class ClockError(SimulationError):
    """A clock domain was configured with an invalid frequency or phase."""


class BitstreamError(ReproError):
    """A bitstream could not be generated, parsed or validated."""


class BitstreamFormatError(BitstreamError):
    """A byte stream does not follow the Xilinx bitstream format."""


class DeviceMismatchError(BitstreamError):
    """A bitstream targets a different FPGA device than the one loaded."""


class CompressionError(ReproError):
    """A codec failed to compress or decompress a payload."""


class CorruptStreamError(CompressionError):
    """A compressed stream is malformed or truncated."""


class HardwareModelError(ReproError):
    """A hardware component model was driven outside its legal envelope."""


class FrequencyError(HardwareModelError):
    """A component was clocked above its maximum rated frequency."""


class CapacityError(HardwareModelError):
    """A memory (BRAM, CF, DDR2) does not have room for the payload."""


class DrpProtocolError(HardwareModelError):
    """The DCM Dynamic Reconfiguration Port protocol was violated."""


class ControllerError(ReproError):
    """A reconfiguration controller was misused (protocol or mode error)."""


class ReconfigurationFailed(ControllerError):
    """A reconfiguration run did not complete successfully."""


class PolicyError(ReproError):
    """No operating point satisfies the requested constraints."""


class CalibrationError(ReproError):
    """A power-model calibration table is malformed or out of range."""


class FleetError(ControllerError):
    """A fleet board or its bitstream library was misused."""


class ServeError(ReproError):
    """A serve spec, workload, or scheduler policy is invalid."""
