"""DAG scheduling of hardware tasks across reconfigurable regions.

Generalizes the linear prefetch pipeline of
:mod:`repro.core.scheduler` to the setting the paper's introduction
motivates: an application expressed as a *task graph*, time-multiplexed
over several reconfigurable regions by one UPaRC instance.

Resource model:

* each **region** holds one configured module and executes one task at
  a time; different regions compute in parallel;
* the **ICAP** is a single port: reconfigurations serialize through it
  (as on the silicon);
* the **manager/BRAM staging** path is also serial: one preload at a
  time, but preloads overlap both computation and other regions'
  reconfigurations (the dual-port BRAM argument of Section III-B);
* a region that already holds the required module skips its
  reconfiguration entirely — the hardware-sharing benefit the paper's
  Related Work opens with.

Scheduling is priority list scheduling over a topological order, with
the critical-path (longest downstream work) priority; networkx
provides the graph machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.bitstream.generator import PartialBitstream
from repro.core.scheduler import TimelineEntry
from repro.errors import PolicyError
from repro.units import DataSize, Frequency


@dataclass(frozen=True)
class DagTask:
    """One node of the application graph."""

    name: str
    module: str                     # which hardware module it needs
    bitstream: PartialBitstream     # that module's partial bitstream
    region: str                     # region it must execute in
    compute_ps: int
    deps: Sequence[str] = ()

    def __post_init__(self) -> None:
        if self.compute_ps < 0:
            raise PolicyError(f"task {self.name!r}: negative compute time")


@dataclass
class DagScheduleReport:
    """Timeline plus derived metrics."""

    timeline: List[TimelineEntry] = field(default_factory=list)
    reconfigurations: int = 0
    reuses: int = 0

    @property
    def makespan_ps(self) -> int:
        return max((entry.end_ps for entry in self.timeline), default=0)

    def entries_for(self, task: str) -> Dict[str, TimelineEntry]:
        return {entry.phase: entry for entry in self.timeline
                if entry.task == task}

    def compute_end(self, task: str) -> int:
        return self.entries_for(task)["compute"].end_ps


class DagScheduler:
    """Critical-path list scheduler for task graphs over regions."""

    def __init__(self,
                 reconfiguration_frequency: Frequency,
                 preload_bandwidth_mbps: float = 50.0,
                 control_overhead_ps: int = 1_200_000,
                 burst_setup_cycles: int = 3) -> None:
        if preload_bandwidth_mbps <= 0:
            raise PolicyError("preload bandwidth must be positive")
        self._frequency = reconfiguration_frequency
        self._preload_bandwidth_mbps = preload_bandwidth_mbps
        self._control_overhead_ps = control_overhead_ps
        self._burst_setup_cycles = burst_setup_cycles

    # -- primitive durations ------------------------------------------------

    def preload_ps(self, size: DataSize) -> int:
        bytes_per_ps = self._preload_bandwidth_mbps * 1024 * 1024 / 1e12
        return round(size.bytes / bytes_per_ps)

    def reconfigure_ps(self, size: DataSize) -> int:
        cycles = size.words + 1 + self._burst_setup_cycles
        return self._frequency.duration_of(cycles) \
            + self._control_overhead_ps

    # -- graph utilities -------------------------------------------------------

    def _build_graph(self, tasks: Sequence[DagTask]) -> nx.DiGraph:
        by_name = {task.name: task for task in tasks}
        if len(by_name) != len(tasks):
            raise PolicyError("duplicate task names in graph")
        graph = nx.DiGraph()
        for task in tasks:
            graph.add_node(task.name, task=task)
        for task in tasks:
            for dep in task.deps:
                if dep not in by_name:
                    raise PolicyError(
                        f"task {task.name!r} depends on unknown {dep!r}"
                    )
                graph.add_edge(dep, task.name)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise PolicyError(f"dependency cycle: {cycle}")
        return graph

    def _priorities(self, graph: nx.DiGraph) -> Dict[str, int]:
        """Critical-path length (this task's work + longest successor
        chain), the classic HLFET priority."""
        priorities: Dict[str, int] = {}
        for name in reversed(list(nx.topological_sort(graph))):
            task: DagTask = graph.nodes[name]["task"]
            own = (task.compute_ps
                   + self.reconfigure_ps(task.bitstream.size))
            downstream = max(
                (priorities[successor]
                 for successor in graph.successors(name)),
                default=0,
            )
            priorities[name] = own + downstream
        return priorities

    # -- scheduling ----------------------------------------------------------------

    def schedule(self, tasks: Sequence[DagTask]) -> DagScheduleReport:
        graph = self._build_graph(tasks)
        priorities = self._priorities(graph)
        report = DagScheduleReport()

        manager_free = 0      # staging/preload path
        icap_free = 0         # single reconfiguration port
        region_free: Dict[str, int] = {}
        region_module: Dict[str, Optional[str]] = {}
        finish: Dict[str, int] = {}

        ready = {name for name in graph.nodes
                 if graph.in_degree(name) == 0}
        completed = set()

        while ready:
            # Highest critical-path priority first; name breaks ties
            # deterministically.
            name = max(ready, key=lambda n: (priorities[n], n))
            ready.remove(name)
            task: DagTask = graph.nodes[name]["task"]
            deps_done = max((finish[dep] for dep in task.deps), default=0)

            if region_module.get(task.region) == task.module:
                # Module reuse: the region already holds this module.
                report.reuses += 1
                compute_start = max(deps_done,
                                    region_free.get(task.region, 0))
            else:
                preload_start = manager_free
                preload_end = preload_start \
                    + self.preload_ps(task.bitstream.size)
                manager_free = preload_end
                report.timeline.append(TimelineEntry(
                    name, "preload", preload_start, preload_end))

                reconfig_start = max(preload_end, icap_free,
                                     region_free.get(task.region, 0))
                reconfig_end = reconfig_start \
                    + self.reconfigure_ps(task.bitstream.size)
                icap_free = reconfig_end
                report.reconfigurations += 1
                report.timeline.append(TimelineEntry(
                    name, "reconfigure", reconfig_start, reconfig_end))
                region_module[task.region] = task.module
                compute_start = max(reconfig_end, deps_done)

            compute_end = compute_start + task.compute_ps
            region_free[task.region] = compute_end
            finish[name] = compute_end
            report.timeline.append(TimelineEntry(
                name, "compute", compute_start, compute_end))

            completed.add(name)
            for successor in graph.successors(name):
                if all(dep in completed
                       for dep in graph.predecessors(successor)):
                    ready.add(successor)

        if len(completed) != len(tasks):
            raise PolicyError("scheduler failed to place every task")
        return report

    def serial_baseline(self, tasks: Sequence[DagTask]) -> int:
        """Makespan with no parallelism and no reuse (worst case)."""
        total = 0
        for task in tasks:
            total += (self.preload_ps(task.bitstream.size)
                      + self.reconfigure_ps(task.bitstream.size)
                      + task.compute_ps)
        return total
