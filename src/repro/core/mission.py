"""Mission-level policy evaluation (the paper's future work, §VI).

    "We will focus our future work on the global power optimization
    of an application using high speed and energy efficient partial
    dynamic reconfiguration."

This module runs that study: a *mission* is a long sequence of
reconfiguration requests (module swaps with deadlines) generated from
a workload model; a *policy* decides the CLK_2 frequency for each
request.  The simulator executes the whole mission through the
analytic timing/power models and accounts total reconfiguration
energy, deadline misses and time spent reconfiguring — so policies
can be compared end to end rather than per swap.

Policies:

* ``max-frequency``  — always 362.5 MHz (the performance-first
  strawman);
* ``power-aware``    — the paper's rule: lowest frequency that meets
  each request's deadline;
* ``energy-optimal`` — minimize per-swap energy (with an active-wait
  manager this also drives frequency *up*; with a gated manager it
  converges toward power-aware).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.policy import FrequencyPolicy, OperatingPoint
from repro.errors import PolicyError
from repro.power.model import PowerModel
from repro.units import DataSize, Frequency, ms


@dataclass(frozen=True)
class SwapRequest:
    """One reconfiguration demand within the mission."""

    at_ps: int                 # request arrival (mission time)
    module: str
    size: DataSize
    deadline_ps: int           # relative: swap must finish this fast

    def __post_init__(self) -> None:
        if self.deadline_ps <= 0:
            raise PolicyError("deadline must be positive")


@dataclass
class MissionResult:
    """Accounting of one policy over one mission."""

    policy: str
    swaps: int = 0
    deadline_misses: int = 0
    infeasible: int = 0
    total_energy_uj: float = 0.0
    total_reconfig_ps: int = 0
    frequencies_mhz: List[float] = field(default_factory=list)

    @property
    def mean_frequency_mhz(self) -> float:
        if not self.frequencies_mhz:
            return 0.0
        return sum(self.frequencies_mhz) / len(self.frequencies_mhz)

    @property
    def energy_per_swap_uj(self) -> float:
        return self.total_energy_uj / self.swaps if self.swaps else 0.0


PolicyFunction = Callable[[FrequencyPolicy, SwapRequest], OperatingPoint]


def _max_frequency_policy(policy: FrequencyPolicy,
                          request: SwapRequest) -> OperatingPoint:
    grid = policy.candidate_frequencies()
    return policy.operating_point(request.size, grid[-1])


def _power_aware_policy(policy: FrequencyPolicy,
                        request: SwapRequest) -> OperatingPoint:
    return policy.lowest_frequency_for_deadline(request.size,
                                                request.deadline_ps)


def _energy_optimal_policy(policy: FrequencyPolicy,
                           request: SwapRequest) -> OperatingPoint:
    return policy.minimum_energy(request.size)


POLICIES: Dict[str, PolicyFunction] = {
    "max-frequency": _max_frequency_policy,
    "power-aware": _power_aware_policy,
    "energy-optimal": _energy_optimal_policy,
}


def run_mission(requests: Sequence[SwapRequest],
                policy_name: str,
                power_model: Optional[PowerModel] = None,
                ) -> MissionResult:
    """Execute every request under one policy and account totals."""
    try:
        decide = POLICIES[policy_name]
    except KeyError:
        known = ", ".join(POLICIES)
        raise PolicyError(
            f"unknown policy {policy_name!r}; known: {known}"
        ) from None
    model = power_model if power_model is not None else PowerModel()
    frequency_policy = FrequencyPolicy(model)
    result = MissionResult(policy=policy_name)
    for request in requests:
        result.swaps += 1
        try:
            point = decide(frequency_policy, request)
        except PolicyError:
            result.infeasible += 1
            # Fall back to flat out; it may still miss the deadline.
            point = _max_frequency_policy(frequency_policy, request)
        if point.duration_ps > request.deadline_ps:
            result.deadline_misses += 1
        result.total_energy_uj += point.energy_uj
        result.total_reconfig_ps += point.duration_ps
        result.frequencies_mhz.append(point.frequency.mhz)
    return result


def compare_policies(requests: Sequence[SwapRequest],
                     power_model: Optional[PowerModel] = None,
                     ) -> Dict[str, MissionResult]:
    """Run the same mission under every policy."""
    return {name: run_mission(requests, name, power_model)
            for name in POLICIES}


def generate_mission(swap_count: int = 200,
                     seed: int = 7,
                     size_kb_choices: Sequence[float] = (30.0, 49.0,
                                                         81.0, 156.0),
                     deadline_ms_range: tuple = (0.3, 4.0),
                     mean_interarrival_ms: float = 40.0,
                     ) -> List[SwapRequest]:
    """Synthetic mission: Poisson arrivals, mixed sizes and deadlines.

    Models the adaptive-application setting of the paper's intro:
    mode switches arrive irregularly, some urgent (handover-class
    deadlines), some relaxed (background-class).
    """
    rng = random.Random(seed)
    requests: List[SwapRequest] = []
    clock = 0
    for index in range(swap_count):
        clock += round(rng.expovariate(1.0 / mean_interarrival_ms)
                       * 1e9)  # ms -> ps
        size = DataSize.from_kb(rng.choice(list(size_kb_choices)))
        low, high = deadline_ms_range
        deadline = ms(rng.uniform(low, high))
        requests.append(SwapRequest(
            at_ps=clock,
            module=f"module-{index % 8}",
            size=size,
            deadline_ps=deadline,
        ))
    return requests
