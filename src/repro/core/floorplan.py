"""Reconfigurable-region floorplan.

A deployed partial-reconfiguration system divides the FPGA into static
logic plus one or more *reconfigurable partitions*, each a rectangle
of configuration frames.  The paper's evaluation uses a single region;
a production controller serves several (the scheduler's pipeline, the
TMR lanes of the fault-tolerance example).  This module provides the
bookkeeping a multi-region system needs:

* :class:`Region` — a named span of consecutive frames with an origin
  FAR;
* :class:`Floorplan` — a set of non-overlapping regions on a device,
  with placement validation and bitstream-to-region matching (a
  partial bitstream carries its target FAR; loading it into the wrong
  region is a configuration error the silicon would *not* catch, so
  the floorplan catches it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.bitstream.device import DeviceInfo
from repro.bitstream.format import ConfigRegister, Opcode
from repro.bitstream.frames import FrameAddress, region_frames
from repro.bitstream.generator import PartialBitstream
from repro.errors import BitstreamError, CapacityError
from repro.units import DataSize


@dataclass(frozen=True)
class Region:
    """One reconfigurable partition: ``frame_count`` frames at ``origin``."""

    name: str
    origin: FrameAddress
    frame_count: int

    def __post_init__(self) -> None:
        if self.frame_count <= 0:
            raise BitstreamError(
                f"region {self.name!r}: frame count must be positive"
            )

    def frames(self, device: DeviceInfo) -> List[FrameAddress]:
        return list(region_frames(device, self.origin, self.frame_count))

    def frame_set(self, device: DeviceInfo) -> Set[int]:
        return {address.pack() for address in self.frames(device)}

    def capacity(self, device: DeviceInfo) -> DataSize:
        """Raw frame-data capacity of the region."""
        return DataSize(self.frame_count * device.frame_bytes)

    def __str__(self) -> str:
        return (f"{self.name} @ col{self.origin.column}"
                f".minor{self.origin.minor} x{self.frame_count}")


class Floorplan:
    """Non-overlapping regions on one device."""

    def __init__(self, device: DeviceInfo) -> None:
        self.device = device
        self._regions: Dict[str, Region] = {}
        self._claimed: Set[int] = set()

    @property
    def regions(self) -> List[Region]:
        return list(self._regions.values())

    def add_region(self, region: Region) -> Region:
        """Place a region; rejects duplicates and frame overlaps."""
        if region.name in self._regions:
            raise BitstreamError(
                f"region name {region.name!r} already placed"
            )
        frames = region.frame_set(self.device)
        overlap = frames & self._claimed
        if overlap:
            clashing = [other.name for other in self._regions.values()
                        if other.frame_set(self.device) & overlap]
            raise BitstreamError(
                f"region {region.name!r} overlaps {clashing}"
            )
        self._regions[region.name] = region
        self._claimed |= frames
        return region

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            known = ", ".join(sorted(self._regions)) or "(none)"
            raise KeyError(
                f"unknown region {name!r}; placed regions: {known}"
            ) from None

    # -- bitstream matching ------------------------------------------------

    @staticmethod
    def bitstream_origin(bitstream: PartialBitstream
                         ) -> Optional[FrameAddress]:
        """The FAR a partial bitstream targets (its first FAR write)."""
        words = bitstream.raw_words
        index = 0
        while index < len(words) - 1:
            word = words[index]
            if word >> 29 == 0b001:
                register = (word >> 13) & 0x3FFF
                opcode = (word >> 27) & 0b11
                count = word & 0x7FF
                if (register == int(ConfigRegister.FAR)
                        and opcode == int(Opcode.WRITE) and count >= 1):
                    return FrameAddress.unpack(words[index + 1])
                index += 1 + count
            else:
                index += 1
        return None

    def match(self, bitstream: PartialBitstream) -> Region:
        """The region this bitstream targets; validates fit.

        Raises :class:`CapacityError` when the bitstream's frame span
        does not lie inside any placed region, or targets a region but
        overruns it.
        """
        origin = self.bitstream_origin(bitstream)
        if origin is None:
            raise BitstreamError(
                "bitstream carries no FAR write; cannot place it"
            )
        for candidate in self._regions.values():
            if candidate.origin == origin:
                if bitstream.frame_count > candidate.frame_count:
                    raise CapacityError(
                        f"bitstream of {bitstream.frame_count} frames "
                        f"overruns region {candidate.name!r} "
                        f"({candidate.frame_count} frames)"
                    )
                return candidate
        raise CapacityError(
            f"no region at FAR {origin} "
            f"(column {origin.column}, minor {origin.minor})"
        )

    def validate(self, bitstream: PartialBitstream,
                 region_name: str) -> Region:
        """Assert the bitstream targets exactly the named region."""
        region = self.region(region_name)
        matched = self.match(bitstream)
        if matched is not region:
            raise CapacityError(
                f"bitstream targets region {matched.name!r}, "
                f"not {region_name!r}"
            )
        return region
