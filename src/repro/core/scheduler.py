"""Prefetch scheduling of bitstream preloads (Section III-A-1).

    "Scheduling may be able to predict the tasks to be executed on a
    reconfigurable module, thus the configuration data preloading can
    be done during idle time which does not affect the system
    computational performance."

This module turns that sentence into a working scheduler: given a
pipeline of hardware tasks (each needing a partial bitstream in the
reconfigurable region before it can run), it builds a timeline where
task *i+1*'s preload rides under task *i*'s computation, because the
dual-port BRAM lets the Manager fill port A while UReC is idle.

Two strategies are produced for comparison (the prefetch ablation
bench uses both):

* ``sequential`` — preload, reconfigure, compute, repeat (what a
  controller without a dual-port staging buffer must do);
* ``prefetch``   — preloads overlap the previous computation; only
  reconfiguration + compute remain on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bitstream.generator import PartialBitstream
from repro.errors import PolicyError
from repro.units import DataSize, Frequency


@dataclass(frozen=True)
class Task:
    """One hardware task in the application pipeline."""

    name: str
    bitstream: PartialBitstream
    compute_ps: int

    def __post_init__(self) -> None:
        if self.compute_ps < 0:
            raise PolicyError(f"task {self.name!r}: negative compute time")


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled phase on the timeline."""

    task: str
    phase: str       # "preload" | "reconfigure" | "compute"
    start_ps: int
    end_ps: int

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps


@dataclass
class ScheduleReport:
    """A complete schedule and its makespan."""

    strategy: str
    timeline: List[TimelineEntry] = field(default_factory=list)

    @property
    def makespan_ps(self) -> int:
        return max((entry.end_ps for entry in self.timeline), default=0)

    def phase_total_ps(self, phase: str) -> int:
        return sum(entry.duration_ps for entry in self.timeline
                   if entry.phase == phase)

    def entries_for(self, task: str) -> List[TimelineEntry]:
        return [entry for entry in self.timeline if entry.task == task]


class PrefetchScheduler:
    """Builds sequential vs. prefetch schedules for a task pipeline."""

    def __init__(self,
                 reconfiguration_frequency: Frequency,
                 preload_bandwidth_mbps: float = 50.0,
                 control_overhead_ps: int = 1_200_000,
                 burst_setup_cycles: int = 3) -> None:
        if preload_bandwidth_mbps <= 0:
            raise PolicyError("preload bandwidth must be positive")
        self._frequency = reconfiguration_frequency
        self._preload_bandwidth_mbps = preload_bandwidth_mbps
        self._control_overhead_ps = control_overhead_ps
        self._burst_setup_cycles = burst_setup_cycles

    # -- primitive durations -------------------------------------------------

    def preload_ps(self, size: DataSize) -> int:
        bytes_per_ps = self._preload_bandwidth_mbps * 1024 * 1024 / 1e12
        return round(size.bytes / bytes_per_ps)

    def reconfigure_ps(self, size: DataSize) -> int:
        cycles = size.words + 1 + self._burst_setup_cycles
        return self._frequency.duration_of(cycles) \
            + self._control_overhead_ps

    # -- strategies ---------------------------------------------------------------

    def sequential(self, tasks: Sequence[Task]) -> ScheduleReport:
        """No overlap: each task pays its full preload."""
        report = ScheduleReport(strategy="sequential")
        clock = 0
        for task in tasks:
            size = task.bitstream.size
            for phase, duration in (
                ("preload", self.preload_ps(size)),
                ("reconfigure", self.reconfigure_ps(size)),
                ("compute", task.compute_ps),
            ):
                report.timeline.append(
                    TimelineEntry(task.name, phase, clock, clock + duration))
                clock += duration
        return report

    def prefetch(self, tasks: Sequence[Task]) -> ScheduleReport:
        """Overlap preloads with the previous task's computation.

        The first task's preload cannot be hidden (nothing runs yet).
        A preload longer than the previous computation spills: the
        spill lands on the critical path, which is why fast preload
        (or a faster controller) still matters for short tasks.
        """
        report = ScheduleReport(strategy="prefetch")
        clock = 0
        preload_done: Dict[str, int] = {}
        previous_compute_start: Optional[int] = None
        for index, task in enumerate(tasks):
            size = task.bitstream.size
            duration = self.preload_ps(size)
            if index == 0:
                start = clock
            else:
                # Preload starts as soon as the previous compute begins
                # (the region is busy computing; port A is free).
                assert previous_compute_start is not None
                start = previous_compute_start
            report.timeline.append(
                TimelineEntry(task.name, "preload", start, start + duration))
            preload_done[task.name] = start + duration

            # Reconfiguration needs the region idle AND the preload done.
            ready = max(clock, preload_done[task.name])
            reconfig = self.reconfigure_ps(size)
            report.timeline.append(
                TimelineEntry(task.name, "reconfigure", ready,
                              ready + reconfig))
            clock = ready + reconfig

            previous_compute_start = clock
            report.timeline.append(
                TimelineEntry(task.name, "compute", clock,
                              clock + task.compute_ps))
            clock += task.compute_ps
        return report

    def compare(self, tasks: Sequence[Task]) -> Dict[str, ScheduleReport]:
        """Both strategies, keyed by name."""
        return {
            "sequential": self.sequential(tasks),
            "prefetch": self.prefetch(tasks),
        }

    def savings_percent(self, tasks: Sequence[Task]) -> float:
        """Makespan reduction of prefetch over sequential."""
        reports = self.compare(tasks)
        sequential = reports["sequential"].makespan_ps
        prefetch = reports["prefetch"].makespan_ps
        if sequential == 0:
            return 0.0
        return (1 - prefetch / sequential) * 100.0
