"""UPaRCSystem — the full Fig. 2 system, the library's main entry point.

Wires a Manager (MicroBlaze), UReC, DyCloGen, the dual-port BRAM, the
ICAP primitive and (optionally) a hardware decompressor onto one
discrete-event simulator, with a power model sampling the whole thing.

Typical use::

    from repro.core import UPaRCSystem
    from repro.bitstream import generate_bitstream
    from repro.units import Frequency, DataSize

    system = UPaRCSystem()
    system.set_frequency(Frequency.from_mhz(362.5))
    bitstream = generate_bitstream(size=DataSize.from_kb(216.5))
    result = system.run(bitstream)
    print(result.bandwidth_decimal_mbps, "MB/s")
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.generator import PartialBitstream
from repro.results import ReconfigurationResult, stream_crc
from repro.core.dyclogen import CLK_2, DyCloGen
from repro.fpga.dcm import best_settings
from repro.core.manager import Manager, PreloadReport
from repro.core.urec import OperationMode, UReC
from repro.errors import ReconfigurationFailed
from repro.fpga.bram import Bram, DEFAULT_BRAM_BYTES
from repro.fpga.config_memory import ConfigurationLogic, ConfigurationMemory
from repro.fpga.decompressor import (
    DECOMPRESSOR_LIBRARY,
    HardwareDecompressor,
)
from repro.fpga.dma import CustomBurstReader
from repro.fpga.icap import Icap
from repro.fpga.microblaze import MicroBlaze
from repro.fpga.sequencer import HardwareSequencer
from repro.obs import current_registry, current_tracer
from repro.obs.tracing import KernelObserver, TraceScope
from repro.power.energy import EnergyReport, energy_from_trace
from repro.power.model import PowerModel
from repro.power.trace import (
    CHAIN_TRACK,
    DECOMPRESSOR_TRACK,
    PowerTraceBuilder,
)
from repro.sim import Event, Process, Simulator
from repro.units import DataSize, Frequency

logger = logging.getLogger(__name__)


class UPaRCSystem:
    """The complete UPaRC system on a simulated FPGA."""

    def __init__(self,
                 device: DeviceInfo = VIRTEX5_SX50T,
                 bram_capacity: DataSize = DataSize(DEFAULT_BRAM_BYTES),
                 decompressor: Optional[str] = "x-matchpro",
                 power_model: Optional[PowerModel] = None,
                 f_in: Frequency = Frequency.from_mhz(100),
                 initial_clk2: Frequency = Frequency.from_mhz(100),
                 allow_overclock: bool = True,
                 manager: str = "microblaze") -> None:
        if manager not in ("microblaze", "hardware"):
            raise ReconfigurationFailed(
                f"manager must be 'microblaze' or 'hardware', got "
                f"{manager!r}")
        self.sim = Simulator()
        # Observability: the scope picks up the process-wide collectors
        # (both default to "off") at construction time; everything it
        # records is sim-time and changes nothing about the simulation.
        self.scope = TraceScope(self.sim, tracer=current_tracer(),
                                label=f"uparc:{device.name}")
        self.registry = current_registry()
        if self.scope.recording or self.registry.enabled:
            self.sim.observer = KernelObserver(self.scope, self.registry)
        self.device = device
        self.manager_kind = manager
        self.power_model = power_model if power_model is not None \
            else PowerModel(hardware_manager=(manager == "hardware"))

        decompressor_spec = (DECOMPRESSOR_LIBRARY[decompressor]
                             if decompressor is not None else None)
        if decompressor_spec is not None:
            # Highest DCM-synthesizable CLK_3 that the decompressor
            # tolerates (the grid rarely hits fmax exactly).
            clk3_target = best_settings(
                f_in, decompressor_spec.max_frequency,
                fout_max=decompressor_spec.max_frequency,
            ).output(f_in)
        else:
            clk3_target = Frequency.from_mhz(100)
        self.dyclogen = DyCloGen(self.sim, f_in,
                                 clk1=f_in,
                                 clk2=initial_clk2,
                                 clk3=clk3_target)
        self.bram = Bram(self.sim, capacity=bram_capacity,
                         allow_overclock=allow_overclock)
        self.config_memory = ConfigurationMemory(device)
        self.config_logic = ConfigurationLogic(self.config_memory)
        self.icap = Icap(self.sim, device, self.dyclogen.clk2,
                         allow_overclock=allow_overclock,
                         config_logic=self.config_logic)
        if manager == "hardware":
            self.cpu = HardwareSequencer(self.sim, self.dyclogen.clk1)
        else:
            self.cpu = MicroBlaze(self.sim, self.dyclogen.clk1)
        self.decompressor: Optional[HardwareDecompressor] = None
        if decompressor_spec is not None:
            self.decompressor = HardwareDecompressor(
                self.sim, decompressor_spec, self.dyclogen.clk3)
        self.urec = UReC(self.sim, self.bram, self.icap,
                         self.dyclogen.clk2,
                         reader=CustomBurstReader(
                             max_frequency=device.icap_fmax_demonstrated),
                         decompressor=self.decompressor,
                         scope=self.scope)
        self._power_builder: Optional[PowerTraceBuilder] = None
        self.manager = Manager(self.sim, self.cpu, self.bram,
                               self.dyclogen,
                               decompressor=self.decompressor,
                               scope=self.scope)
        self._preloaded: Optional[PartialBitstream] = None
        self._preload_report: Optional[PreloadReport] = None
        self._run_index = 0

    # -- configuration ------------------------------------------------------

    @property
    def frequency(self) -> Frequency:
        """The current reconfiguration clock (CLK_2)."""
        return self.dyclogen.clk2.frequency

    def set_frequency(self, target: Frequency) -> Frequency:
        """Retune CLK_2 through DyCloGen (absorbs the DCM relock)."""
        process = Process(
            self.sim,
            self.manager.adapt_frequency_process(target),
            name="adapt-frequency",
        )
        self.sim.run()
        achieved = process.result
        settings = self.dyclogen.settings_of(CLK_2)
        logger.info("CLK_2 retuned to %s (M=%d, D=%d)", achieved,
                    settings.multiplier, settings.divisor)
        return achieved

    def set_decompressor_frequency(self, target: Frequency) -> Frequency:
        process = Process(
            self.sim,
            self.manager.adapt_decompressor_clock_process(target),
            name="adapt-clk3",
        )
        self.sim.run()
        return process.result

    def swap_decompressor(self, name: str) -> ReconfigurationResult:
        """Swap the decompressor via partial reconfiguration (§VI).

        "This decompressor is dynamically reconfigurable that allows
        to change compression/decompression algorithm by partial
        reconfiguration ... after being reconfigured, its frequency
        (CLK_3) will be dynamically modified by DyCloGen."

        The swap is a real reconfiguration: a partial bitstream sized
        to the new decompressor's area streams through this system's
        own UReC/ICAP path, then CLK_3 retunes to the new engine's
        ceiling.  Returns the swap's reconfiguration result; after it
        completes, compressed-mode runs use the new algorithm.
        """
        from repro.bitstream.generator import generate_bitstream
        from repro.fpga.area import PACKERS, ResourceInventory
        try:
            spec = DECOMPRESSOR_LIBRARY[name]
        except KeyError:
            known = ", ".join(sorted(DECOMPRESSOR_LIBRARY))
            raise ReconfigurationFailed(
                f"unknown decompressor {name!r}; known: {known}"
            ) from None

        # Size the decompressor region from its slice count: a V5
        # slice column pair is ~36 frames; ~6.5 slices of CLB resources
        # per frame-column byte budget reduces to a simple proportional
        # estimate of ~60 B of frame data per slice.
        slices = PACKERS["virtex5"].slices(
            ResourceInventory(luts=spec.luts, ffs=spec.ffs))
        size = DataSize(max(4096, slices * 60))
        swap_bitstream = generate_bitstream(
            size=size, seed=hash(name) % 100_000,
            device=self.device,
            design_name=f"decompressor_{name}")
        result = self.run(swap_bitstream)

        # Install the new engine and retune CLK_3 beneath its ceiling.
        self.decompressor = HardwareDecompressor(
            self.sim, spec, self.dyclogen.clk3)
        self.urec._decompressor = self.decompressor
        self.manager._decompressor = self.decompressor
        clk3_target = best_settings(
            self.dyclogen.f_in, spec.max_frequency,
            fout_max=spec.max_frequency).output(self.dyclogen.f_in)
        self.set_decompressor_frequency(clk3_target)
        logger.info("decompressor swapped to %s (CLK_3 = %s)",
                    name, self.dyclogen.clk3.frequency)
        return result

    # -- preload --------------------------------------------------------------

    def preload(self, bitstream: PartialBitstream,
                mode: Optional[OperationMode] = None) -> PreloadReport:
        """Stage a bitstream into BRAM (Manager port-A copy)."""
        process = Process(
            self.sim,
            self.manager.preload_process(bitstream, mode),
            name="preload",
        )
        self.sim.run()
        self._preloaded = bitstream
        self._preload_report = process.result
        report = process.result
        if self.registry.enabled:
            self.registry.counter("system.preloads").inc()
            self.registry.histogram("system.preload_us").observe(
                report.duration_ps / 1e6)
        logger.debug("preloaded %s as %s (%s stored, %.1f us)",
                     bitstream.size, report.mode.name.lower(),
                     report.stored_size, report.duration_ps / 1e6)
        return report

    def preload_async(self, bitstream: PartialBitstream,
                      mode: Optional[OperationMode] = None) -> Process:
        """Start a preload without blocking simulated time.

        Section III-A-1's overlap, on the real simulator: the Manager
        fills BRAM port A while the fabric computes (model computation
        with :meth:`advance`) — the preload costs no critical-path
        time as long as the computation outlasts it.  The returned
        process handle resolves to the :class:`PreloadReport`; the
        bitstream becomes the staged one the moment it completes.
        Do not overlap with :meth:`reconfigure` of the *same* staging
        area — port B would read half-written words, exactly as on
        hardware.
        """
        process = Process(
            self.sim,
            self.manager.preload_process(bitstream, mode),
            name="preload-async",
        )

        def on_done(event) -> None:
            self._preloaded = bitstream
            self._preload_report = event.payload

        process.finished.add_waiter(on_done)
        return process

    def advance(self, duration_ps: int) -> int:
        """Let simulated time pass (computation, idling).

        Pending background work (async preloads) progresses during the
        window.  Returns the new simulation time.
        """
        return self.sim.run(until_ps=self.sim.now + duration_ps)

    # -- reconfigure -----------------------------------------------------------

    def reconfigure(self, collect_power: bool = True,
                    ) -> ReconfigurationResult:
        """Run one reconfiguration of the preloaded bitstream."""
        if self._preloaded is None or self._preload_report is None:
            raise ReconfigurationFailed("no bitstream preloaded")
        bitstream = self._preloaded
        report = self._preload_report
        self._run_index += 1

        builder: Optional[PowerTraceBuilder] = None
        if collect_power:
            # The builder subscribes to the system's trace scope and
            # samples power on the phase transitions the manager and
            # the chain/decompressor tracks announce — the exact
            # instants the old direct wiring sampled at.
            builder = PowerTraceBuilder(
                self.sim, self.power_model,
                name=f"core_power.run{self._run_index}")
            self.scope.subscribe(builder)

        start = Event(self.sim, "start")
        finish = Event(self.sim, "finish")
        clk2_mhz = self.dyclogen.clk2.frequency.mhz
        clk3_mhz = self.dyclogen.clk3.frequency.mhz
        compressed = report.mode is OperationMode.COMPRESSED

        chain_track = self.scope.track(CHAIN_TRACK, cat="power")
        decompressor_track = self.scope.track(DECOMPRESSOR_TRACK,
                                              cat="power")

        def on_start(event: Event) -> None:
            chain_track.enter("active", clk2_mhz=clk2_mhz)
            if compressed:
                decompressor_track.enter("active", clk3_mhz=clk3_mhz)

        def on_finish(event: Event) -> None:
            chain_track.exit()
            if compressed:
                decompressor_track.exit()

        start.add_waiter(on_start)
        finish.add_waiter(on_finish)

        Process(self.sim, self.urec.process(start, finish), name="urec")
        control = Process(
            self.sim,
            self.manager.control_process(start, finish),
            name="manager-control",
        )
        self.sim.run()
        start_ps, finish_ps, overhead_ps = control.result

        expected = stream_crc(bitstream.raw_bytes)
        frames_before = getattr(self, "_frames_written_total", 0)
        self._frames_written_total = self.config_logic.frames_written
        result = ReconfigurationResult(
            controller="UPaRC_ii" if compressed else "UPaRC_i",
            bitstream_size=bitstream.size,
            stored_size=report.stored_size,
            mode="compressed" if compressed else "raw",
            frequency=self.dyclogen.clk2.frequency,
            start_ps=start_ps,
            finish_ps=finish_ps,
            control_overhead_ps=overhead_ps,
            preload_ps=report.duration_ps,
            words_delivered=self.icap.words_accepted,
            payload_crc=self.icap.payload_crc,
            expected_crc=expected,
            frames_written=self.config_logic.frames_written - frames_before,
        )
        registry = self.registry
        if registry.enabled:
            registry.counter("system.reconfigurations").inc()
            registry.counter("icap.words_written").inc(
                result.words_delivered)
            registry.counter("icap.frames_written").inc(
                result.frames_written)
            registry.histogram("system.transfer_us").observe(
                result.transfer_ps / 1e6)
        if builder is not None:
            trace = builder.finalize()
            self.scope.unsubscribe(builder)
            result.power_trace = trace
            energy = energy_from_trace(trace, start_ps, finish_ps)
            idle = self.power_model.idle_mw()
            corrected = energy_from_trace(trace, start_ps, finish_ps,
                                          baseline_mw=idle)
            mean_mw = energy / ((finish_ps - start_ps) / 1e12) / 1e3 \
                if finish_ps > start_ps else 0.0
            result.energy = EnergyReport(
                controller=result.controller,
                bitstream=bitstream.size,
                duration_ps=finish_ps - start_ps,
                mean_power_mw=mean_mw,
                energy_uj=energy,
                energy_uj_idle_corrected=corrected,
            )
        verified = result.require_verified()
        logger.info("%s: %s in %.1f us (%.0f MB/s, %d frames)",
                    verified.controller, verified.bitstream_size,
                    verified.transfer_ps / 1e6,
                    verified.bandwidth_decimal_mbps,
                    verified.frames_written)
        return verified

    def run(self, bitstream: PartialBitstream,
            frequency: Optional[Frequency] = None,
            mode: Optional[OperationMode] = None,
            collect_power: bool = True) -> ReconfigurationResult:
        """Convenience: optional retune, preload, reconfigure."""
        if frequency is not None:
            self.set_frequency(frequency)
        self.preload(bitstream, mode)
        return self.reconfigure(collect_power=collect_power)

    def run_with_constraints(self, bitstream: PartialBitstream,
                             deadline_ps: Optional[int] = None,
                             power_budget_mw: Optional[float] = None,
                             ) -> ReconfigurationResult:
        """The closed power-aware loop of Section III-A-3.

        The Manager selects the CLK_2 operating point for the given
        constraints (lowest power that meets the deadline under the
        budget -- the paper's rule), retunes DyCloGen, and runs.
        Raises :class:`~repro.errors.PolicyError` when the constraints
        are jointly infeasible, *before* touching the clocks.
        """
        from repro.core.policy import FrequencyPolicy
        policy = FrequencyPolicy(
            self.power_model,
            max_frequency=self.device.icap_fmax_demonstrated,
        )
        point = policy.select(bitstream.size, deadline_ps=deadline_ps,
                              power_budget_mw=power_budget_mw)
        return self.run(bitstream, frequency=point.frequency)
