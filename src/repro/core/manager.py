"""Manager — preloading, reconfiguration control, frequency adaptation.

Section III-A.  The Manager (a MicroBlaze here, as in the paper) does
three things, each modelled as a simulation process stage with cycle
costs from :class:`~repro.fpga.microblaze.MicroBlaze`:

* **Bitstream preloading** — parse the BIT preamble, then copy the
  size+mode header word followed by the configuration words into BRAM
  through port A.  This happens *before* the reconfiguration and can
  be hidden in idle time (see `repro.core.scheduler`).
* **Reconfiguration control** — a short control burst to assert
  "Start", an *active wait* on "Finish" (the paper's explanation for
  frequency-dependent energy), and a control tail.
* **Frequency adaptation** — retune DyCloGen outputs through the DRP
  and absorb the relock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.bitstream.format import bytes_to_words
from repro.bitstream.generator import PartialBitstream
from repro.bitstream.parser import BitstreamParser
from repro.core.dyclogen import CLK_2, CLK_3, DyCloGen
from repro.core.urec import OperationMode, pack_header
from repro.errors import CapacityError
from repro.fpga.bram import Bram
from repro.fpga.decompressor import HardwareDecompressor
from repro.fpga.microblaze import MicroBlaze
from repro.obs.tracing import TraceScope
from repro.power.model import ManagerState
from repro.power.trace import MANAGER_TRACK, PowerTraceBuilder
from repro.sim import Delay, Event, Simulator, WaitEvent
from repro.units import DataSize, Frequency


@dataclass
class PreloadReport:
    """What the preload stage stored and how long it took."""

    mode: OperationMode
    original_size: DataSize     # raw configuration stream
    stored_size: DataSize       # BRAM payload (compressed if mode ii)
    duration_ps: int
    compression_ratio_percent: Optional[float] = None


class Manager:
    """Drives UPaRC; owns the power-state bookkeeping."""

    def __init__(self, sim: Simulator, cpu: MicroBlaze, bram: Bram,
                 dyclogen: DyCloGen,
                 decompressor: Optional[HardwareDecompressor] = None,
                 power: Optional[PowerTraceBuilder] = None,
                 scope: Optional[TraceScope] = None) -> None:
        self._sim = sim
        self._cpu = cpu
        self._bram = bram
        self._dyclogen = dyclogen
        self._decompressor = decompressor
        self._power = power
        self._scope = scope if scope is not None else TraceScope(sim)
        self._track = self._scope.track(MANAGER_TRACK, cat="controller")
        self.last_preload: Optional[PreloadReport] = None

    # -- power-state helper ---------------------------------------------

    def _state(self, state: str) -> None:
        """Announce a state-machine transition on the manager track.

        Power sampling rides on the scope: a subscribed
        :class:`PowerTraceBuilder` receives the transition via
        ``on_phase``.  The legacy ``power=`` constructor wiring (a
        builder called directly, no scope) is still honoured.
        """
        if self._power is not None:
            self._power.manager_state(state)
        if state == ManagerState.IDLE:
            self._track.exit()
        else:
            self._track.enter(state)

    # -- preloading -------------------------------------------------------

    def choose_mode(self, bitstream: PartialBitstream) -> OperationMode:
        """Section III-C policy: compress iff the raw stream won't fit."""
        if self._bram.fits(bitstream.size):
            return OperationMode.RAW
        if self._decompressor is None:
            raise CapacityError(
                f"bitstream of {bitstream.size} exceeds BRAM "
                f"{self._bram.capacity} and no decompressor is configured"
            )
        return OperationMode.COMPRESSED

    def preload_process(self, bitstream: PartialBitstream,
                        mode: Optional[OperationMode] = None,
                        ) -> Generator:
        """Parse + copy the bitstream into BRAM (port A)."""
        begin = self._sim.now
        self._state(ManagerState.COPY)
        try:
            yield Delay(self._cpu.parse_duration_ps())
            parsed = BitstreamParser(decode_packets=False).parse(
                bitstream.file_bytes)
            raw_words = parsed.raw_words
            chosen = mode if mode is not None else self.choose_mode(bitstream)
            ratio: Optional[float] = None
            if chosen is OperationMode.COMPRESSED:
                if self._decompressor is None:
                    raise CapacityError("compressed preload without "
                                        "decompressor")
                compressed = self._decompressor.compress_offline(
                    bitstream.raw_bytes)
                if len(compressed) % 4:
                    compressed += b"\x00" * (4 - len(compressed) % 4)
                stored_words = bytes_to_words(compressed)
                ratio = (1 - len(compressed) / len(bitstream.raw_bytes)) * 100
            else:
                stored_words = raw_words
            if len(stored_words) + 1 > self._bram.capacity.words:
                raise CapacityError(
                    f"stored payload of {len(stored_words)} words (+header) "
                    f"exceeds BRAM capacity {self._bram.capacity.words} words"
                )
            header = pack_header(chosen, len(stored_words))
            self._bram.preload([header] + stored_words)
            yield Delay(self._cpu.preload_duration_ps(len(stored_words) + 1))
        finally:
            self._state(ManagerState.IDLE)
        report = PreloadReport(
            mode=chosen,
            original_size=bitstream.size,
            stored_size=DataSize.from_words(len(stored_words)),
            duration_ps=self._sim.now - begin,
            compression_ratio_percent=ratio,
        )
        self.last_preload = report
        return report

    # -- reconfiguration control ------------------------------------------

    def control_process(self, start: Event, finish: Event) -> Generator:
        """Start pulse, active wait, finish detection.

        Returns (start_time_ps, finish_time_ps, control_overhead_ps).
        """
        overhead = self._cpu.control_duration_ps()
        lead = overhead // 2
        tail = overhead - lead
        self._state(ManagerState.CONTROL)
        self._cpu.busy.begin()
        yield Delay(lead)
        self._cpu.busy.end()
        start_time = self._sim.now
        self._state(ManagerState.WAIT)
        self._cpu.waiting.begin()
        start.trigger()
        yield WaitEvent(finish)
        finish_time = self._sim.now
        self._cpu.waiting.end()
        self._state(ManagerState.CONTROL)
        self._cpu.busy.begin()
        yield Delay(tail)
        self._cpu.busy.end()
        self._state(ManagerState.IDLE)
        return start_time, finish_time, overhead

    # -- frequency adaptation ----------------------------------------------

    def adapt_frequency_process(self, target: Frequency) -> Generator:
        """Retune CLK_2 and wait for the DCM to relock."""
        self._state(ManagerState.CONTROL)
        self._cpu.busy.begin()
        try:
            lock_ps = self._dyclogen.retune(CLK_2, target)
            yield Delay(lock_ps)
        finally:
            self._cpu.busy.end()
            self._state(ManagerState.IDLE)
        return self._dyclogen.clk2.frequency

    def adapt_decompressor_clock_process(self, target: Frequency,
                                         ) -> Generator:
        """Retune CLK_3 (after a decompressor swap)."""
        self._state(ManagerState.CONTROL)
        self._cpu.busy.begin()
        try:
            lock_ps = self._dyclogen.retune(CLK_3, target)
            yield Delay(lock_ps)
        finally:
            self._cpu.busy.end()
            self._state(ManagerState.IDLE)
        return self._dyclogen.clk3.frequency
