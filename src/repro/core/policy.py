"""Power-aware frequency selection (the "Pa" in UPaRC).

Section III-A-3 and Section V: the Manager analyzes performance and
power constraints at run time and picks the CLK_2 frequency through
DyCloGen.  The paper's conclusion is the policy implemented here:
*use the lowest frequency that meets the timing constraint* — power
rises with frequency, so any faster clock wastes power; but because
the (current, unoptimized) manager actively waits, *energy* falls with
frequency, so an energy-capped selection pushes the other way.  The
policy exposes all three objectives.

Candidate frequencies are the DCM-synthesizable grid (F_in x M / D
within the DFS window and the controller envelope), exactly what
DyCloGen can actually produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PolicyError
from repro.fpga.dcm import D_RANGE, FOUT_MIN, M_RANGE
from repro.power.model import PowerModel
from repro.units import DataSize, Frequency, PS_PER_S


@dataclass(frozen=True)
class OperatingPoint:
    """One candidate frequency with its predicted consequences."""

    frequency: Frequency
    duration_ps: int
    power_mw: float
    energy_uj: float


class FrequencyPolicy:
    """Selects CLK_2 operating points for mode-i reconfigurations."""

    def __init__(self, power_model: PowerModel,
                 f_in: Frequency = Frequency.from_mhz(100),
                 max_frequency: Frequency = Frequency.from_mhz(362.5),
                 control_overhead_ps: int = 1_200_000,
                 burst_setup_cycles: int = 3) -> None:
        self._power = power_model
        self._f_in = f_in
        self._max_frequency = max_frequency
        self._control_overhead_ps = control_overhead_ps
        self._burst_setup_cycles = burst_setup_cycles

    # -- candidate grid ---------------------------------------------------

    def candidate_frequencies(self) -> List[Frequency]:
        """The DCM-synthesizable grid up to the controller envelope."""
        seen = set()
        result: List[Frequency] = []
        for multiplier in range(M_RANGE[0], M_RANGE[1] + 1):
            for divisor in range(D_RANGE[0], D_RANGE[1] + 1):
                frequency = self._f_in.scaled(multiplier, divisor)
                if frequency < FOUT_MIN or frequency > self._max_frequency:
                    continue
                if frequency.hertz in seen:
                    continue
                seen.add(frequency.hertz)
                result.append(frequency)
        result.sort()
        if not result:
            raise PolicyError("empty DCM frequency grid")
        return result

    # -- prediction ---------------------------------------------------------

    def predict_duration_ps(self, size: DataSize,
                            frequency: Frequency) -> int:
        """Mode-i reconfiguration time at a candidate frequency."""
        cycles = size.words + 1 + self._burst_setup_cycles  # + header read
        return (frequency.duration_of(cycles)
                + self._control_overhead_ps)

    def operating_point(self, size: DataSize,
                        frequency: Frequency) -> OperatingPoint:
        duration = self.predict_duration_ps(size, frequency)
        power = self._power.uparc_reconfiguration_mw(frequency.mhz)
        energy = power * 1e-3 * (duration / PS_PER_S) * 1e6  # uJ
        return OperatingPoint(frequency, duration, power, energy)

    # -- objectives -----------------------------------------------------------

    def lowest_frequency_for_deadline(self, size: DataSize,
                                      deadline_ps: int) -> OperatingPoint:
        """The paper's power-aware rule: slowest clock that still fits."""
        for frequency in self.candidate_frequencies():
            point = self.operating_point(size, frequency)
            if point.duration_ps <= deadline_ps:
                return point
        best = self.operating_point(size, self.candidate_frequencies()[-1])
        raise PolicyError(
            f"no frequency meets deadline {deadline_ps} ps for {size}; "
            f"fastest point needs {best.duration_ps} ps at {best.frequency}"
        )

    def fastest_under_power(self, size: DataSize,
                            power_budget_mw: float) -> OperatingPoint:
        """Highest frequency whose busy power fits the budget."""
        chosen: Optional[OperatingPoint] = None
        for frequency in self.candidate_frequencies():
            point = self.operating_point(size, frequency)
            if point.power_mw <= power_budget_mw:
                chosen = point
        if chosen is None:
            raise PolicyError(
                f"no frequency fits power budget {power_budget_mw} mW "
                f"(minimum is "
                f"{self.operating_point(size, self.candidate_frequencies()[0]).power_mw:.0f} mW)"
            )
        return chosen

    def minimum_energy(self, size: DataSize) -> OperatingPoint:
        """Lowest-energy point (with an active-wait manager this is
        the *fastest* clock — the paper's Section V observation)."""
        points = [self.operating_point(size, frequency)
                  for frequency in self.candidate_frequencies()]
        return min(points, key=lambda point: point.energy_uj)

    def select(self, size: DataSize,
               deadline_ps: Optional[int] = None,
               power_budget_mw: Optional[float] = None) -> OperatingPoint:
        """Joint selection: meet the deadline at minimum power, under
        an optional power cap.  Raises :class:`PolicyError` when the
        constraints cannot be met simultaneously."""
        candidates = [self.operating_point(size, frequency)
                      for frequency in self.candidate_frequencies()]
        if power_budget_mw is not None:
            candidates = [point for point in candidates
                          if point.power_mw <= power_budget_mw]
            if not candidates:
                raise PolicyError(
                    f"power budget {power_budget_mw} mW excludes every "
                    f"frequency"
                )
        if deadline_ps is not None:
            candidates = [point for point in candidates
                          if point.duration_ps <= deadline_ps]
            if not candidates:
                raise PolicyError(
                    "no operating point satisfies both deadline and "
                    "power budget"
                )
        # Lowest power first (equivalently lowest frequency).
        return min(candidates, key=lambda point: point.power_mw)

    def pareto_frontier(self, size: DataSize) -> List[OperatingPoint]:
        """Non-dominated (duration, power) operating points.

        The trade-off curve the Manager navigates: every point on it
        is the fastest possible at its power level and the coolest at
        its speed.  With power monotone in frequency and duration
        anti-monotone, the whole grid is non-dominated — unless two
        M/D settings land at nearly the same frequency, where the
        worse one is pruned; the function therefore also deduplicates
        numerically-equal neighbours.
        """
        points = [self.operating_point(size, frequency)
                  for frequency in self.candidate_frequencies()]
        frontier: List[OperatingPoint] = []
        for point in sorted(points, key=lambda p: p.duration_ps):
            if frontier and point.power_mw >= frontier[-1].power_mw:
                continue  # dominated: slower or equal AND hotter
            frontier.append(point)
        return list(reversed(frontier))  # slow/cool -> fast/hot
