"""UReC — the ultra-fast reconfiguration controller FSM.

Figure 4 of the paper, as a simulation process:

1. Wait for "Start".
2. Enable BRAM port B and ICAP (EN assertion).
3. Read the first 32-bit word: operation mode (bit 31) and payload
   size in words (bits 30..0) — the Fig. 3 header the Manager wrote.
4. Without compression: burst the payload from BRAM straight into
   ICAP, one word per CLK_2 cycle, uninterrupted.
   With compression: stream the payload through the decompressor
   (CLK_3) into ICAP (CLK_2); the slower of the two sides paces the
   transfer.
5. Assert "Finish"; deassert EN on BRAM and ICAP to save power.

The transfer is *functional*: the exact words land in the ICAP model
and are CRC-verified against the source bitstream by the caller.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator, Optional

from repro.bitstream.format import bytes_to_words
from repro.errors import ReconfigurationFailed
from repro.fpga.bram import Bram
from repro.fpga.decompressor import HardwareDecompressor
from repro.fpga.dma import CustomBurstReader
from repro.fpga.icap import Icap
from repro.obs.tracing import TraceScope
from repro.sim import Clock, Delay, Event, Simulator, WaitCycles

HEADER_MODE_BIT = 31
HEADER_SIZE_MASK = (1 << 31) - 1


class OperationMode(enum.IntEnum):
    """Fig. 3 header modes."""

    RAW = 0
    COMPRESSED = 1


def pack_header(mode: OperationMode, payload_words: int) -> int:
    """Encode the first BRAM word (size + operation mode)."""
    if not 0 <= payload_words <= HEADER_SIZE_MASK:
        raise ReconfigurationFailed(
            f"payload of {payload_words} words does not fit the header"
        )
    return (int(mode) << HEADER_MODE_BIT) | payload_words


def unpack_header(word: int) -> tuple:
    return OperationMode((word >> HEADER_MODE_BIT) & 1), \
        word & HEADER_SIZE_MASK


@dataclass
class TransferStats:
    """What one UReC run moved and how long the burst took."""

    mode: OperationMode
    stored_words: int      # words read from BRAM (after the header)
    output_words: int      # words delivered to ICAP
    burst_ps: int          # pure transfer time (excl. handshake)


class UReC:
    """The redesigned, minimal burst controller."""

    def __init__(self, sim: Simulator, bram: Bram, icap: Icap,
                 clock: Clock,
                 reader: Optional[CustomBurstReader] = None,
                 decompressor: Optional[HardwareDecompressor] = None,
                 scope: Optional[TraceScope] = None) -> None:
        self._sim = sim
        self._bram = bram
        self._icap = icap
        self.clock = clock
        self._reader = reader if reader is not None else CustomBurstReader()
        self._decompressor = decompressor
        self._scope = scope if scope is not None else TraceScope(sim)
        self.runs = 0
        self.last_stats: Optional[TransferStats] = None

    @property
    def decompressor(self) -> Optional[HardwareDecompressor]:
        return self._decompressor

    def process(self, start: Event, finish: Event) -> Generator:
        """The FSM as a simulation process (one reconfiguration)."""
        yield from self._wait_start(start)
        self._reader.check_frequency(self.clock.frequency)
        self._bram.enable_read_port(self.clock)
        self._icap.enable()
        self._icap.reset_payload()
        try:
            with self._scope.span("urec.run", cat="urec"):
                with self._scope.span("urec.header", cat="urec"):
                    # Header read: one CLK_2 cycle.
                    yield WaitCycles(self.clock, 1)
                    mode, stored_words = unpack_header(
                        self._bram.read_word(0))
                if mode is OperationMode.RAW:
                    stats = yield from self._raw_transfer(stored_words)
                else:
                    stats = yield from self._compressed_transfer(
                        stored_words)
        finally:
            self._icap.disable()
            self._bram.disable_read_port()
        self.runs += 1
        self.last_stats = stats
        finish.trigger(stats)

    def _wait_start(self, start: Event) -> Generator:
        from repro.sim import WaitEvent  # local import avoids cycle noise
        yield WaitEvent(start)

    def _raw_transfer(self, stored_words: int) -> Generator:
        """Mode i: BRAM -> ICAP burst, one word per cycle."""
        words = self._bram.read_burst(1, stored_words)
        cycles = self._reader.transfer_cycles(stored_words)
        begin = self._sim.now
        with self._scope.span("urec.raw_burst", cat="urec",
                              words=stored_words):
            # ICAP absorbs the words; the custom reader's setup cycles
            # are the only overhead beyond one word per cycle.
            self._icap.absorb(words)
            yield WaitCycles(self.clock, cycles)
        return TransferStats(
            mode=OperationMode.RAW,
            stored_words=stored_words,
            output_words=stored_words,
            burst_ps=self._sim.now - begin,
        )

    def _compressed_transfer(self, stored_words: int) -> Generator:
        """Mode ii: BRAM -> decompressor (CLK_3) -> ICAP (CLK_2)."""
        if self._decompressor is None:
            raise ReconfigurationFailed(
                "compressed-mode header but no decompressor configured"
            )
        self._decompressor.check_frequency()
        compressed_words = self._bram.read_burst(1, stored_words)
        from repro.bitstream.format import words_to_bytes
        compressed = words_to_bytes(compressed_words)
        original = self._decompressor.expand(compressed)
        if len(original) % 4:
            # Configuration streams are word aligned by construction.
            raise ReconfigurationFailed(
                "decompressed stream is not word aligned"
            )
        output_words = bytes_to_words(original)

        begin = self._sim.now
        self._decompressor.activity.begin()
        try:
            with self._scope.span("decompressor.stream",
                                  cat="decompressor",
                                  words_in=stored_words,
                                  words_out=len(output_words)):
                decomp_ps = self._decompressor.clock.cycles_duration(
                    self._decompressor.stream_cycles(len(output_words)))
                icap_ps = self._icap.absorb(output_words, packed=original)
                # The pipeline is paced by its slower side.
                yield Delay(max(decomp_ps, icap_ps))
        finally:
            self._decompressor.activity.end()
        return TransferStats(
            mode=OperationMode.COMPRESSED,
            stored_words=stored_words,
            output_words=len(output_words),
            burst_ps=self._sim.now - begin,
        )
