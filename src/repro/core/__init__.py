"""The paper's primary contribution: UPaRC.

* :class:`UReC` — the ultra-fast reconfiguration controller FSM
  (Section III-B): Start/Finish handshake, header decode, burst
  BRAM-to-ICAP transfer, EN power gating.
* :class:`DyCloGen` — the dynamic clock generator (Section III-D):
  three run-time-retunable clocks over DCM/DRP.
* :class:`Manager` — bitstream preloading, reconfiguration control and
  frequency adaptation (Section III-A).
* :class:`UPaRCSystem` — the full Fig. 2 system, the main public entry
  point.
* :mod:`repro.core.policy` — power-aware frequency selection.
* :mod:`repro.core.scheduler` — prefetch scheduling of preloads into
  idle time (Section III-A-1).
"""

from repro.core.urec import OperationMode, UReC
from repro.core.dyclogen import DyCloGen
from repro.core.manager import Manager, PreloadReport
from repro.core.policy import FrequencyPolicy, OperatingPoint
from repro.core.system import UPaRCSystem
from repro.core.scheduler import PrefetchScheduler, Task, ScheduleReport
from repro.core.floorplan import Floorplan, Region
from repro.core.dag_scheduler import DagScheduler, DagTask

__all__ = [
    "OperationMode",
    "UReC",
    "DyCloGen",
    "Manager",
    "PreloadReport",
    "FrequencyPolicy",
    "OperatingPoint",
    "UPaRCSystem",
    "PrefetchScheduler",
    "Task",
    "ScheduleReport",
    "Floorplan",
    "Region",
    "DagScheduler",
    "DagTask",
]
