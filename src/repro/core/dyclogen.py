"""DyCloGen — the dynamic clock generator (Section III-D).

Provides the three run-time-modifiable clocks of Fig. 2:

* ``CLK_1`` — the Manager / preload clock (normally left at F_in);
* ``CLK_2`` — the reconfiguration clock driving UReC, BRAM port B and
  ICAP, the paper's main power/performance lever;
* ``CLK_3`` — the decompressor clock, retuned per decompressor
  implementation after a codec swap.

Each output is backed by a :class:`~repro.fpga.dcm.Dcm`; retuning goes
through the real DRP write sequence and costs the DCM relock time,
which the caller (the Manager) waits out.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import FrequencyError
from repro.fpga.dcm import Dcm, DcmSettings, best_settings
from repro.sim import Clock, Simulator
from repro.units import Frequency

CLK_1 = "clk1"
CLK_2 = "clk2"
CLK_3 = "clk3"


class DyCloGen:
    """Three DRP-retunable clock outputs from one input clock."""

    def __init__(self, sim: Simulator, f_in: Frequency,
                 clk1: Frequency, clk2: Frequency, clk3: Frequency,
                 fout_max: Frequency = Frequency.from_mhz(400)) -> None:
        self._sim = sim
        self.f_in = f_in
        self._fout_max = fout_max
        self.clocks: Dict[str, Clock] = {}
        self.dcms: Dict[str, Dcm] = {}
        for name, target in ((CLK_1, clk1), (CLK_2, clk2), (CLK_3, clk3)):
            clock = Clock(sim, name, f_in)  # retuned by the DCM below
            settings = best_settings(f_in, target, fout_max)
            self.dcms[name] = Dcm(sim, f_in, settings, clock)
            self.clocks[name] = clock
            self._check_exact(name, target, clock.frequency)

    @staticmethod
    def _check_exact(name: str, target: Frequency,
                     achieved: Frequency) -> None:
        # 1% synthesis tolerance: the M/D grid cannot hit every target.
        if abs(achieved.hertz - target.hertz) > target.hertz * 0.01:
            raise FrequencyError(
                f"{name}: best DCM setting gives {achieved}, more than "
                f"1% away from requested {target}"
            )

    @property
    def clk1(self) -> Clock:
        return self.clocks[CLK_1]

    @property
    def clk2(self) -> Clock:
        return self.clocks[CLK_2]

    @property
    def clk3(self) -> Clock:
        return self.clocks[CLK_3]

    def retune(self, name: str, target: Frequency) -> int:
        """Retune one output; returns the relock wait in picoseconds.

        The caller must not clock anything from this output until the
        wait has elapsed (the Manager yields a Delay for it).
        """
        if name not in self.dcms:
            raise FrequencyError(f"unknown DyCloGen output {name!r}")
        lock_ps = self.dcms[name].retune_to(target, self._fout_max)
        self._check_exact(name, target, self.clocks[name].frequency)
        return lock_ps

    def settings_of(self, name: str) -> DcmSettings:
        return self.dcms[name].settings

    def frequencies(self) -> Dict[str, Frequency]:
        return {name: clock.frequency
                for name, clock in self.clocks.items()}
