"""Component power model on top of a calibration.

:class:`PowerModel` answers one question: *given what is active right
now and the clock frequencies, what is the FPGA core power in mW?*
The trace builder samples it at activity edges to produce Fig. 7-style
curves, and the energy module integrates those.

Contributions:

====================  ============================================
static                always on (leakage)
manager               control burst / software copy / active wait
reconfiguration chain UReC + BRAM + ICAP + CLK_2 tree, scales with
                      the reconfiguration clock per the calibration
decompressor          mode ii only, scales with CLK_3
====================  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import CalibrationError
from repro.power.calibration import Calibration, ML605_CALIBRATION


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous power decomposition in mW."""

    static: float
    manager: float
    chain: float
    decompressor: float

    @property
    def total(self) -> float:
        return self.static + self.manager + self.chain + self.decompressor

    def chain_components(self, split: Dict[str, float]) -> Dict[str, float]:
        """Per-component chain share (reporting convenience)."""
        return {name: self.chain * share for name, share in split.items()}


class ManagerState:
    """Manager activity levels, in increasing power order."""

    IDLE = "idle"
    WAIT = "wait"        # spinning on "Finish"
    COPY = "copy"        # software word-copy loop
    CONTROL = "control"  # control burst (the pre-start peak)


class PowerModel:
    """Maps component states to instantaneous power."""

    def __init__(self, calibration: Calibration = ML605_CALIBRATION,
                 analytic: bool = False,
                 hardware_manager: bool = False) -> None:
        self._calibration = calibration
        self._analytic = analytic
        self.hardware_manager = hardware_manager

    @property
    def calibration(self) -> Calibration:
        return self._calibration

    def manager_mw(self, state: str) -> float:
        calibration = self._calibration
        if self.hardware_manager:
            levels = {
                ManagerState.IDLE: 0.0,
                ManagerState.WAIT: calibration.hw_manager_wait_mw,
                ManagerState.COPY: calibration.hw_manager_control_mw,
                ManagerState.CONTROL: calibration.hw_manager_control_mw,
            }
        else:
            levels = {
                ManagerState.IDLE: 0.0,
                ManagerState.WAIT: calibration.manager_wait_mw,
                ManagerState.COPY: calibration.manager_copy_mw,
                ManagerState.CONTROL: calibration.manager_control_mw,
            }
        try:
            return levels[state]
        except KeyError:
            raise CalibrationError(f"unknown manager state {state!r}") \
                from None

    def chain_mw(self, active: bool, clk2_mhz: float) -> float:
        if not active:
            return 0.0
        if self._analytic:
            return self._calibration.chain_dynamic_mw_analytic(clk2_mhz)
        return self._calibration.chain_dynamic_mw(clk2_mhz)

    def decompressor_mw(self, active: bool, clk3_mhz: float) -> float:
        if not active:
            return 0.0
        return self._calibration.decompressor_mw_per_mhz * clk3_mhz

    def breakdown(self, manager_state: str = ManagerState.IDLE,
                  chain_active: bool = False,
                  clk2_mhz: float = 100.0,
                  decompressor_active: bool = False,
                  clk3_mhz: float = 0.0) -> PowerBreakdown:
        return PowerBreakdown(
            static=self._calibration.static_mw,
            manager=self.manager_mw(manager_state),
            chain=self.chain_mw(chain_active, clk2_mhz),
            decompressor=self.decompressor_mw(decompressor_active, clk3_mhz),
        )

    def total_mw(self, **kwargs) -> float:
        return self.breakdown(**kwargs).total

    # -- paper-level summary figures -----------------------------------

    def idle_mw(self) -> float:
        return self._calibration.static_mw

    def uparc_reconfiguration_mw(self, clk2_mhz: float,
                                 decompressor_clk3_mhz: Optional[float] = None,
                                 ) -> float:
        """Total during a UPaRC reconfiguration (manager active-waits)."""
        return self.total_mw(
            manager_state=ManagerState.WAIT,
            chain_active=True,
            clk2_mhz=clk2_mhz,
            decompressor_active=decompressor_clk3_mhz is not None,
            clk3_mhz=decompressor_clk3_mhz or 0.0,
        )

    def xps_reconfiguration_mw(self) -> float:
        """Total during an xps_hwicap reconfiguration (manager copies)."""
        return self.total_mw(manager_state=ManagerState.COPY)
