"""Power-model calibration against the paper's measurements.

Section V's numbers over-determine the model, and solving them jointly
fixes every free constant:

* UPaRC at 100 MHz: 259 mW for 550 us over 216.5 KB = 0.658 uJ/KB —
  the paper's "0.66 uJ/KB".  So the paper's energy metric is **total
  measured power x reconfiguration time**.
* xps_hwicap: 30 uJ/KB at 1.5 MB/s implies 45 mW total during its
  reconfiguration.  xps_hwicap's ICAP trickles (negligible dynamic
  power), so 45 mW = static + manager-copy activity.
* Therefore static ~ 30 mW and manager activity ~ 15 mW; the
  Fig. 7 idle floor and pre-start manager peak are consistent with
  these levels, and the 45x efficiency ratio (30 / 0.66) follows.

The remaining Fig. 7 residual — total minus static minus manager-wait
— is the reconfiguration chain (UReC + BRAM + ICAP + clock tree)
dynamic power as a function of CLK_2.  It is stored as the measured
table (piecewise-linear interpolation, linear extrapolation beyond
300 MHz) plus a least-squares linear fit for the analytic mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import CalibrationError


def _linear_fit(points: List[Tuple[float, float]]) -> Tuple[float, float]:
    """Least-squares (intercept, slope) for y = a + b*x."""
    count = len(points)
    if count < 2:
        raise CalibrationError("linear fit needs at least two points")
    mean_x = sum(x for x, _ in points) / count
    mean_y = sum(y for _, y in points) / count
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in points)
    variance = sum((x - mean_x) ** 2 for x, _ in points)
    if variance == 0:
        raise CalibrationError("degenerate fit: all x equal")
    slope = covariance / variance
    return mean_y - slope * mean_x, slope


@dataclass(frozen=True)
class Calibration:
    """A complete power calibration for one board/device."""

    board: str
    # Total FPGA-core power during UPaRC reconfiguration, Fig. 7.
    fig7_points_mhz_mw: Dict[float, float]
    static_mw: float = 30.0
    manager_wait_mw: float = 15.0     # active wait on "Finish"
    manager_copy_mw: float = 15.0     # software copy loop (xps_hwicap)
    manager_control_mw: float = 60.0  # the pre-start control peak
    # Hardware-sequencer manager (Section III-A's "smaller hardware
    # modules"): clock-gated wait, tiny control FSM.
    hw_manager_wait_mw: float = 0.0
    hw_manager_control_mw: float = 5.0
    # Decompressor dynamic power per MHz of CLK_3 (mode ii adder; not
    # constrained by the paper -- area-proportional assumption).
    decompressor_mw_per_mhz: float = 0.45
    # Share of chain dynamic power per component (reporting only).
    chain_split: Dict[str, float] = field(default_factory=lambda: {
        "bram": 0.40, "icap": 0.35, "clock_tree": 0.15, "urec": 0.10,
    })

    def __post_init__(self) -> None:
        if len(self.fig7_points_mhz_mw) < 2:
            raise CalibrationError("need at least two Fig. 7 points")
        if any(p <= 0 for p in self.fig7_points_mhz_mw.values()):
            raise CalibrationError("non-positive calibration power")
        floor = self.static_mw + self.manager_wait_mw
        if any(p <= floor for p in self.fig7_points_mhz_mw.values()):
            raise CalibrationError(
                "calibration point at or below the static+wait floor"
            )
        if abs(sum(self.chain_split.values()) - 1.0) > 1e-9:
            raise CalibrationError("chain split must sum to 1")

    # -- chain dynamic power ------------------------------------------

    def _chain_points(self) -> List[Tuple[float, float]]:
        floor = self.static_mw + self.manager_wait_mw
        return sorted((mhz, total - floor)
                      for mhz, total in self.fig7_points_mhz_mw.items())

    def chain_dynamic_mw(self, frequency_mhz: float) -> float:
        """Measured-table chain power (interpolated/extrapolated)."""
        if frequency_mhz <= 0:
            raise CalibrationError("frequency must be positive")
        points = self._chain_points()
        if frequency_mhz <= points[0][0]:
            # Scale the first point towards the origin: dynamic power
            # vanishes with frequency.
            return points[0][1] * frequency_mhz / points[0][0]
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if frequency_mhz <= x1:
                fraction = (frequency_mhz - x0) / (x1 - x0)
                return y0 + fraction * (y1 - y0)
        # Extrapolate from the last segment (the 362.5 MHz question).
        (x0, y0), (x1, y1) = points[-2], points[-1]
        slope = (y1 - y0) / (x1 - x0)
        return y1 + slope * (frequency_mhz - x1)

    def chain_dynamic_fit(self) -> Tuple[float, float]:
        """(intercept, slope mW/MHz) least-squares over the table."""
        return _linear_fit(self._chain_points())

    def chain_dynamic_mw_analytic(self, frequency_mhz: float) -> float:
        intercept, slope = self.chain_dynamic_fit()
        return max(0.0, intercept + slope * frequency_mhz)

    # -- paper-implied anchors (used by tests) -------------------------

    def xps_busy_mw(self) -> float:
        """Total power while xps_hwicap reconfigures (45 mW implied)."""
        return self.static_mw + self.manager_copy_mw

    def uparc_busy_mw(self, frequency_mhz: float,
                      analytic: bool = False) -> float:
        """Total power while UPaRC reconfigures at CLK_2 = f."""
        chain = (self.chain_dynamic_mw_analytic(frequency_mhz) if analytic
                 else self.chain_dynamic_mw(frequency_mhz))
        return self.static_mw + self.manager_wait_mw + chain


# The ML605 / Virtex-6 calibration of Section V.
ML605_CALIBRATION = Calibration(
    board="ML605",
    fig7_points_mhz_mw={50.0: 183.0, 100.0: 259.0,
                        200.0: 394.0, 300.0: 453.0},
)
