"""Energy metrics — the Section V efficiency figures.

The paper's metric is **total measured power x reconfiguration time,
per KB of bitstream** (that is the only reading under which its
0.66 uJ/KB for UPaRC at 100 MHz and 30 uJ/KB for xps_hwicap are both
consistent with its Fig. 7 powers; see power/calibration.py).  This
module computes that metric from power traces or from (power, time)
pairs, plus an idle-corrected variant for sensitivity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import ValueTrace
from repro.units import DataSize, PS_PER_S


def energy_from_trace(trace: ValueTrace, start_ps: int, end_ps: int,
                      baseline_mw: float = 0.0) -> float:
    """Energy in microjoules over [start_ps, end_ps).

    ``baseline_mw`` is subtracted from every sample (use the static
    power for the idle-corrected variant).
    """
    if end_ps <= start_ps:
        raise ValueError("empty window")
    mw_ps_area = 0.0  # area under the power curve, in mW*ps
    samples = trace.samples
    for index, sample in enumerate(samples):
        seg_start = sample.time_ps
        seg_end = (samples[index + 1].time_ps
                   if index + 1 < len(samples) else end_ps)
        lo = max(seg_start, start_ps)
        hi = min(seg_end, end_ps)
        if lo < hi:
            mw_ps_area += max(0.0, sample.value - baseline_mw) * (hi - lo)
    # mW * ps = 1e-3 W * 1e-12 s = 1e-15 J = 1e-9 uJ.
    return mw_ps_area * 1e-9


def uj_per_kb(energy_uj: float, size: DataSize) -> float:
    """The paper's efficiency figure of merit."""
    if size.bytes <= 0:
        raise ValueError("size must be positive")
    return energy_uj / size.kb


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one reconfiguration."""

    controller: str
    bitstream: DataSize
    duration_ps: int
    mean_power_mw: float
    energy_uj: float
    energy_uj_idle_corrected: float

    @property
    def uj_per_kb(self) -> float:
        return uj_per_kb(self.energy_uj, self.bitstream)

    @property
    def uj_per_kb_idle_corrected(self) -> float:
        return uj_per_kb(self.energy_uj_idle_corrected, self.bitstream)

    @classmethod
    def from_power(cls, controller: str, bitstream: DataSize,
                   duration_ps: int, power_mw: float,
                   idle_mw: float) -> "EnergyReport":
        """Build from a constant busy power (the paper's arithmetic)."""
        if duration_ps <= 0:
            raise ValueError("duration must be positive")
        seconds = duration_ps / PS_PER_S
        energy = power_mw * 1e-3 * seconds * 1e6  # -> uJ
        corrected = max(0.0, power_mw - idle_mw) * 1e-3 * seconds * 1e6
        return cls(
            controller=controller,
            bitstream=bitstream,
            duration_ps=duration_ps,
            mean_power_mw=power_mw,
            energy_uj=energy,
            energy_uj_idle_corrected=corrected,
        )
