"""Power-trace construction from simulation activity.

Builds the Fig. 7 curves: a :class:`~repro.sim.trace.ValueTrace` of
total core power over time, assembled from timestamped *phase events*
that controllers emit while they run (manager control burst, copy
loop, active wait, chain enable/disable, decompressor enable/disable).

Controllers call the ``enter_*``/``leave_*`` methods as their
simulation processes advance; the builder samples the power model at
every state change, producing a stepwise trace whose integral is the
reconfiguration energy.
"""

from __future__ import annotations

from typing import Optional

from repro.power.model import ManagerState, PowerModel
from repro.sim import Simulator, ValueTrace


class PowerTraceBuilder:
    """Accumulates component state and samples total power."""

    def __init__(self, sim: Simulator, model: PowerModel,
                 name: str = "core_power") -> None:
        self._sim = sim
        self._model = model
        self.trace = ValueTrace(name)
        self._manager_state = ManagerState.IDLE
        self._chain_active = False
        self._clk2_mhz = 100.0
        self._decompressor_active = False
        self._clk3_mhz = 0.0
        self._sample()

    # -- state transitions ---------------------------------------------

    def manager_state(self, state: str) -> None:
        if state != self._manager_state:
            self._manager_state = state
            self._sample()

    def chain_on(self, clk2_mhz: float) -> None:
        self._chain_active = True
        self._clk2_mhz = clk2_mhz
        self._sample()

    def chain_off(self) -> None:
        if self._chain_active:
            self._chain_active = False
            self._sample()

    def decompressor_on(self, clk3_mhz: float) -> None:
        self._decompressor_active = True
        self._clk3_mhz = clk3_mhz
        self._sample()

    def decompressor_off(self) -> None:
        if self._decompressor_active:
            self._decompressor_active = False
            self._sample()

    def finalize(self) -> ValueTrace:
        """Return to idle and close the trace."""
        self._manager_state = ManagerState.IDLE
        self._chain_active = False
        self._decompressor_active = False
        self._sample()
        return self.trace

    # -- sampling --------------------------------------------------------

    @property
    def current_mw(self) -> float:
        return self._model.total_mw(
            manager_state=self._manager_state,
            chain_active=self._chain_active,
            clk2_mhz=self._clk2_mhz,
            decompressor_active=self._decompressor_active,
            clk3_mhz=self._clk3_mhz,
        )

    def _sample(self) -> None:
        self.trace.record(self._sim.now, self.current_mw)

    def power_between(self, start_ps: int, end_ps: int) -> float:
        """Mean power over a window (mW), zero-order-hold weighted."""
        if end_ps <= start_ps:
            raise ValueError("empty window")
        total = 0.0
        samples = self.trace.samples
        for index, sample in enumerate(samples):
            seg_start = sample.time_ps
            seg_end = (samples[index + 1].time_ps
                       if index + 1 < len(samples) else end_ps)
            lo = max(seg_start, start_ps)
            hi = min(seg_end, end_ps)
            if lo < hi:
                total += sample.value * (hi - lo)
        return total / (end_ps - start_ps)
