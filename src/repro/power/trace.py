"""Power-trace construction from simulation activity.

Builds the Fig. 7 curves: a :class:`~repro.sim.trace.ValueTrace` of
total core power over time, assembled from timestamped *phase events*
that controllers emit while they run (manager control burst, copy
loop, active wait, chain enable/disable, decompressor enable/disable).

The builder is a :class:`~repro.obs.tracing.SpanSubscriber`: wired to
a system's :class:`~repro.obs.tracing.TraceScope`, it receives one
:meth:`on_phase` call per phase-track transition and samples the
power model at each — the same sampling instants the historical
``enter_*``/``leave_*`` wiring produced, so the Fig. 7 output is
byte-identical whether or not a trace is being recorded.  The direct
transition methods remain the builder's API (and ``on_phase`` simply
dispatches to them).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.primitives import Sample  # noqa: F401  back-compat re-export
from repro.obs.tracing import SpanSubscriber
from repro.power.model import ManagerState, PowerModel
from repro.sim import Simulator, ValueTrace

#: Phase-track names the builder understands (see ``on_phase``).
MANAGER_TRACK = "manager"
CHAIN_TRACK = "chain"
DECOMPRESSOR_TRACK = "decompressor"


class PowerTraceBuilder(SpanSubscriber):
    """Accumulates component state and samples total power."""

    def __init__(self, sim: Simulator, model: PowerModel,
                 name: str = "core_power") -> None:
        self._sim = sim
        self._model = model
        self.trace = ValueTrace(name)
        self._manager_state = ManagerState.IDLE
        self._chain_active = False
        self._clk2_mhz = 100.0
        self._decompressor_active = False
        self._clk3_mhz = 0.0
        self._sample()

    # -- state transitions ---------------------------------------------

    def manager_state(self, state: str) -> None:
        if state != self._manager_state:
            self._manager_state = state
            self._sample()

    def chain_on(self, clk2_mhz: float) -> None:
        self._chain_active = True
        self._clk2_mhz = clk2_mhz
        self._sample()

    def chain_off(self) -> None:
        if self._chain_active:
            self._chain_active = False
            self._sample()

    def decompressor_on(self, clk3_mhz: float) -> None:
        self._decompressor_active = True
        self._clk3_mhz = clk3_mhz
        self._sample()

    def decompressor_off(self) -> None:
        if self._decompressor_active:
            self._decompressor_active = False
            self._sample()

    # -- span subscription ----------------------------------------------

    def on_phase(self, track: str, phase: Optional[str], time_ps: int,
                 args: Optional[Dict[str, Any]]) -> None:
        """Phase-track transitions mapped onto power-state changes.

        ``time_ps`` always equals ``sim.now`` when the scope delivers
        the callback, so sampling through :meth:`_sample` lands on the
        same instant the direct methods would.
        """
        if track == MANAGER_TRACK:
            self.manager_state(ManagerState.IDLE if phase is None
                               else phase)
        elif track == CHAIN_TRACK:
            if phase is None:
                self.chain_off()
            else:
                self.chain_on((args or {}).get("clk2_mhz",
                                               self._clk2_mhz))
        elif track == DECOMPRESSOR_TRACK:
            if phase is None:
                self.decompressor_off()
            else:
                self.decompressor_on((args or {}).get("clk3_mhz",
                                                      self._clk3_mhz))

    def finalize(self) -> ValueTrace:
        """Return to idle and close the trace."""
        self._manager_state = ManagerState.IDLE
        self._chain_active = False
        self._decompressor_active = False
        self._sample()
        return self.trace

    # -- sampling --------------------------------------------------------

    @property
    def current_mw(self) -> float:
        return self._model.total_mw(
            manager_state=self._manager_state,
            chain_active=self._chain_active,
            clk2_mhz=self._clk2_mhz,
            decompressor_active=self._decompressor_active,
            clk3_mhz=self._clk3_mhz,
        )

    def _sample(self) -> None:
        self.trace.record(self._sim.now, self.current_mw)

    def power_between(self, start_ps: int, end_ps: int) -> float:
        """Mean power over a window (mW), zero-order-hold weighted."""
        if end_ps <= start_ps:
            raise ValueError("empty window")
        total = 0.0
        samples = self.trace.samples
        for index, sample in enumerate(samples):
            seg_start = sample.time_ps
            seg_end = (samples[index + 1].time_ps
                       if index + 1 < len(samples) else end_ps)
            lo = max(seg_start, start_ps)
            hi = min(seg_end, end_ps)
            if lo < hi:
                total += sample.value * (hi - lo)
        return total / (end_ps - start_ps)
