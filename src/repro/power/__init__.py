"""Power and energy substrate (Fig. 7 and the Section V energy claims).

The model is calibrated against the paper's ML605 measurements:

* the four Fig. 7 operating points (183 mW @ 50 MHz ... 453 mW @
  300 MHz during reconfiguration of a 216.5 KB bitstream);
* the energy-efficiency pair of Section V — 30 uJ/KB for xps_hwicap at
  1.5 MB/s and 0.66 uJ/KB for UPaRC — which together pin the static
  (~30 mW) and manager active-wait (~15 mW) contributions, making the
  45x ratio emerge rather than being hard-coded.

Two model modes: ``calibrated`` interpolates the published points
(exact at the four frequencies), ``analytic`` uses a least-squares
linear P = P0 + k*f fit for extrapolation and ablations; the deviation
between the two is reported in EXPERIMENTS.md.
"""

from repro.power.calibration import Calibration, ML605_CALIBRATION
from repro.power.model import PowerModel, PowerBreakdown
from repro.power.trace import PowerTraceBuilder
from repro.power.energy import EnergyReport, energy_from_trace, uj_per_kb

__all__ = [
    "Calibration",
    "ML605_CALIBRATION",
    "PowerModel",
    "PowerBreakdown",
    "PowerTraceBuilder",
    "EnergyReport",
    "energy_from_trace",
    "uj_per_kb",
]
