"""Controller interface (the Table III comparison surface).

The result records live in :mod:`repro.results` (shared with the core
system to avoid an import cycle); this module adds the abstract
controller base every baseline and the UPaRC adapter implement.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.bitstream.generator import PartialBitstream
from repro.results import (
    LargeBitstreamGrade,
    ReconfigurationResult,
    stream_crc,
)
from repro.units import Frequency

__all__ = [
    "LargeBitstreamGrade",
    "ReconfigurationResult",
    "stream_crc",
    "ReconfigurationController",
]


class ReconfigurationController(abc.ABC):
    """Common surface of UPaRC and every baseline."""

    #: Display name (Table III row).
    name: str = "controller"
    #: Capacity grade (Table III column).
    large_bitstream: LargeBitstreamGrade = LargeBitstreamGrade.LIMITED

    @property
    @abc.abstractmethod
    def max_frequency(self) -> Frequency:
        """Maximum reconfiguration-clock frequency (Table III column)."""

    @property
    def reference_frequency(self) -> Frequency:
        """The clock at which the Table III bandwidth was measured.

        Defaults to the maximum; xps_hwicap overrides it because its
        published 14.5 MB/s comes from a 100 MHz processor even though
        the HWICAP core is rated to 120 MHz.
        """
        return self.max_frequency

    @abc.abstractmethod
    def reconfigure(self, bitstream: PartialBitstream,
                    frequency: Optional[Frequency] = None,
                    ) -> ReconfigurationResult:
        """Run one full reconfiguration of ``bitstream``.

        ``frequency`` defaults to the controller's maximum.  The
        result is CRC-verified against the source stream.
        """

    def best_result(self, bitstream: PartialBitstream,
                    ) -> ReconfigurationResult:
        """Reconfigure at the controller's reference conditions."""
        return self.reconfigure(bitstream, self.reference_frequency)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max={self.max_frequency})"
