"""UPaRC adapter: the core system behind the comparison interface.

Exposes the full :class:`~repro.core.system.UPaRCSystem` (Manager +
UReC + DyCloGen + decompressor) through the same
:class:`ReconfigurationController` surface as the baselines, in the
paper's two instances:

* ``UparcController(mode="i")``  — preloading without compression,
  362.5 MHz, 1433 MB/s, capacity grade "-";
* ``UparcController(mode="ii")`` — preloading with compression
  (X-MatchPRO, 64-bit, 126 MHz CLK_3), CLK_2 at 255 MHz, 1008 MB/s,
  capacity grade "++".
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.generator import PartialBitstream
from repro.controllers.base import (
    LargeBitstreamGrade,
    ReconfigurationController,
    ReconfigurationResult,
)
from repro.core.system import UPaRCSystem
from repro.core.urec import OperationMode
from repro.errors import ControllerError
from repro.fpga.bram import DEFAULT_BRAM_BYTES
from repro.power.model import PowerModel
from repro.units import DataSize, Frequency

UPARC_I_MAX = Frequency.from_mhz(362.5)
UPARC_II_MAX = Frequency.from_mhz(255)


class UparcController(ReconfigurationController):
    """UPaRC in mode i (raw) or ii (compressed preloading)."""

    def __init__(self, mode: str = "i",
                 device: DeviceInfo = VIRTEX5_SX50T,
                 bram_capacity: DataSize = DataSize(DEFAULT_BRAM_BYTES),
                 decompressor: str = "x-matchpro",
                 power_model: Optional[PowerModel] = None) -> None:
        if mode not in ("i", "ii"):
            raise ControllerError(f"UPaRC mode must be 'i' or 'ii', "
                                  f"got {mode!r}")
        self.mode = mode
        self.device = device
        self.name = f"UPaRC_{mode}"
        self.large_bitstream = (LargeBitstreamGrade.LIMITED if mode == "i"
                                else LargeBitstreamGrade.COMPRESSED)
        self._bram_capacity = bram_capacity
        self._decompressor = decompressor if mode == "ii" else None
        self._power_model = power_model

    @property
    def max_frequency(self) -> Frequency:
        if self.mode == "i":
            return min(UPARC_I_MAX, self.device.icap_fmax_demonstrated)
        return UPARC_II_MAX

    def _build_system(self) -> UPaRCSystem:
        return UPaRCSystem(
            device=self.device,
            bram_capacity=self._bram_capacity,
            decompressor=self._decompressor,
            power_model=self._power_model,
        )

    def reconfigure(self, bitstream: PartialBitstream,
                    frequency: Optional[Frequency] = None,
                    ) -> ReconfigurationResult:
        clock = frequency if frequency is not None else self.max_frequency
        if clock > self.max_frequency:
            raise ControllerError(
                f"{self.name} limited to {self.max_frequency}, got {clock}"
            )
        system = self._build_system()
        operation = (OperationMode.RAW if self.mode == "i"
                     else OperationMode.COMPRESSED)
        return system.run(bitstream, frequency=clock, mode=operation)
