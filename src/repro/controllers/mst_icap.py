"""MST_ICAP — DMA master from DDR2 SDRAM (Liu et al., FPL 2009).

The capacity-oriented sibling of BRAM_HWICAP: bitstreams live in DDR2
(grade +++), but every burst pays SDRAM activation/CAS/turnaround, so
the effective rate is about half the 120 MHz bus theoretical —
235 MB/s in Table III (24-word bursts with 25 overhead cycles give
exactly 49 % efficiency here).

As with BRAM_HWICAP, the default device is the comparison's Virtex-5
(the original was measured on Virtex-4).
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.generator import PartialBitstream
from repro.controllers._harness import TransferPlan, execute_plan
from repro.controllers.base import (
    LargeBitstreamGrade,
    ReconfigurationController,
    ReconfigurationResult,
)
from repro.errors import CapacityError, ControllerError
from repro.fpga.memory import Ddr2Sdram
from repro.power.model import ManagerState, PowerModel
from repro.units import Frequency


class MstIcap(ReconfigurationController):
    """Bus-master ICAP controller reading from DDR2."""

    name = "MST_ICAP"
    large_bitstream = LargeBitstreamGrade.UNLIMITED

    def __init__(self, device: DeviceInfo = VIRTEX5_SX50T,
                 ddr2: Optional[Ddr2Sdram] = None,
                 power_model: Optional[PowerModel] = None) -> None:
        self.device = device
        self.ddr2 = ddr2 if ddr2 is not None else Ddr2Sdram(
            burst_words=24, burst_setup_cycles=25)
        self._power_model = power_model

    @property
    def max_frequency(self) -> Frequency:
        return Frequency.from_mhz(120)

    def reconfigure(self, bitstream: PartialBitstream,
                    frequency: Optional[Frequency] = None,
                    ) -> ReconfigurationResult:
        clock = frequency if frequency is not None else self.max_frequency
        if clock > self.max_frequency:
            raise ControllerError(
                f"MST_ICAP limited to {self.max_frequency}, got {clock}"
            )
        if bitstream.size.bytes > self.ddr2.capacity.bytes:
            raise CapacityError(
                f"{bitstream.size} exceeds DDR2 capacity "
                f"{self.ddr2.capacity}"
            )
        words = list(bitstream.raw_words)
        cycles = self.ddr2.read_cycles(len(words))
        plan = TransferPlan(
            controller=self.name,
            mode="ddr2",
            stored_size=bitstream.size,
            output_words=words,
            transfer_ps=clock.duration_of(cycles),
            manager_state=ManagerState.WAIT,
            chain_active=True,
        )
        return execute_plan(plan, self.device, clock, bitstream,
                            power_model=self._power_model)
