"""BRAM_HWICAP — DMA from on-chip BRAM (Liu et al., FPL 2009).

The fastest of the FPL'09 designs: bitstreams staged in BRAM, moved by
the Xilinx central DMA.  Its two structural limits are exactly the
ones Table III grades it on:

* **frequency** — the DMA and the shared system clock cap it at
  120 MHz (the whole system runs on one clock, unlike UPaRC's
  DyCloGen-decoupled CLK_2);
* **capacity** — raw bitstreams only, bounded by BRAM (grade "-").

With the central DMA's burst arbitration (24-word bursts, 7 setup
cycles -> 77.4 % efficiency) it reaches ~371 MB/s at 120 MHz, the
Table III figure.

Liu et al. measured on Virtex-4; the model defaults to the Virtex-5
of the UPaRC comparison so every Table III contender consumes the
same bitstream (burst/frequency parameters are the published ones and
do not depend on the family).
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.generator import PartialBitstream
from repro.controllers._harness import TransferPlan, execute_plan
from repro.controllers.base import (
    LargeBitstreamGrade,
    ReconfigurationController,
    ReconfigurationResult,
)
from repro.errors import CapacityError
from repro.fpga.dma import XilinxCentralDma
from repro.power.model import ManagerState, PowerModel
from repro.units import DataSize, Frequency


class BramHwicap(ReconfigurationController):
    """Central-DMA transfer from a BRAM staging buffer."""

    name = "BRAM_HWICAP"
    large_bitstream = LargeBitstreamGrade.LIMITED

    def __init__(self, device: DeviceInfo = VIRTEX5_SX50T,
                 bram_capacity: DataSize = DataSize.from_kb(256),
                 dma: Optional[XilinxCentralDma] = None,
                 power_model: Optional[PowerModel] = None) -> None:
        self.device = device
        self.bram_capacity = bram_capacity
        self.dma = dma if dma is not None else XilinxCentralDma(
            max_frequency=Frequency.from_mhz(120),
            burst_words=24,
            burst_setup_cycles=7,
        )
        self._power_model = power_model

    @property
    def max_frequency(self) -> Frequency:
        return self.dma.max_frequency

    def reconfigure(self, bitstream: PartialBitstream,
                    frequency: Optional[Frequency] = None,
                    ) -> ReconfigurationResult:
        clock = frequency if frequency is not None else self.max_frequency
        self.dma.check_frequency(clock)
        if bitstream.size.bytes > self.bram_capacity.bytes:
            raise CapacityError(
                f"BRAM_HWICAP stores raw bitstreams only; {bitstream.size} "
                f"exceeds its {self.bram_capacity} of BRAM"
            )
        words = list(bitstream.raw_words)
        cycles = self.dma.transfer_cycles(len(words))
        plan = TransferPlan(
            controller=self.name,
            mode="bram",
            stored_size=bitstream.size,
            output_words=words,
            transfer_ps=clock.duration_of(cycles),
            manager_state=ManagerState.WAIT,
            chain_active=True,
        )
        return execute_plan(plan, self.device, clock, bitstream,
                            power_model=self._power_model)
