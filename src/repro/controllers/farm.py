"""FaRM — Fast Reconfiguration Manager (Duhem et al., ARC 2011).

The fastest controller in the pre-UPaRC literature: BRAM staging, a
streamlined burst engine that sustains one word per cycle, and
run-length bitstream compression that stretches the staging BRAM
(grade ++).  Its hard ceiling is the 200 MHz system clock — 800 MB/s,
which the paper beats 1.8x.

Two FaRM modes are modelled, matching the original design:

* ``direct``   — raw bitstream in BRAM, straight burst;
* ``compressed`` — RLE-compressed staging, decompressed in line at one
  output word per cycle (RLE decode is trivially single-cycle), so the
  throughput is the same but capacity grows by the (bitstream-
  dependent!) RLE ratio — the variability the paper criticizes.
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.generator import PartialBitstream
from repro.compress.rle import RleCodec
from repro.controllers._harness import TransferPlan, execute_plan
from repro.controllers.base import (
    LargeBitstreamGrade,
    ReconfigurationController,
    ReconfigurationResult,
)
from repro.errors import CapacityError, ControllerError
from repro.power.model import ManagerState, PowerModel
from repro.units import DataSize, Frequency

FARM_SETUP_CYCLES = 4


class Farm(ReconfigurationController):
    """FaRM with optional RLE-compressed staging."""

    name = "FaRM"
    large_bitstream = LargeBitstreamGrade.COMPRESSED

    def __init__(self, device: DeviceInfo = VIRTEX5_SX50T,
                 bram_capacity: DataSize = DataSize.from_kb(256),
                 mode: str = "compressed",
                 power_model: Optional[PowerModel] = None) -> None:
        if mode not in ("direct", "compressed"):
            raise ControllerError(
                f"FaRM mode must be 'direct' or 'compressed', got {mode!r}"
            )
        self.device = device
        self.bram_capacity = bram_capacity
        self.mode = mode
        self._codec = RleCodec()
        self._power_model = power_model

    @property
    def max_frequency(self) -> Frequency:
        return Frequency.from_mhz(200)

    def reconfigure(self, bitstream: PartialBitstream,
                    frequency: Optional[Frequency] = None,
                    ) -> ReconfigurationResult:
        clock = frequency if frequency is not None else self.max_frequency
        if clock > self.max_frequency:
            raise ControllerError(
                f"FaRM limited to {self.max_frequency}, got {clock}"
            )
        words = list(bitstream.raw_words)
        if self.mode == "compressed":
            compressed = self._codec.compress(bitstream.raw_bytes)
            stored = DataSize(len(compressed))
            # Functional check: the staged stream must round-trip.
            if self._codec.decompress(compressed) != bitstream.raw_bytes:
                raise ControllerError("FaRM RLE round-trip failed")
        else:
            stored = bitstream.size
        if stored.bytes > self.bram_capacity.bytes:
            raise CapacityError(
                f"FaRM staging of {stored} exceeds {self.bram_capacity} "
                f"BRAM (mode {self.mode!r})"
            )
        # Output side paces either mode: one word per cycle.
        cycles = len(words) + FARM_SETUP_CYCLES
        plan = TransferPlan(
            controller=self.name,
            mode=self.mode,
            stored_size=stored,
            output_words=words,
            transfer_ps=clock.duration_of(cycles),
            manager_state=ManagerState.WAIT,
            chain_active=True,
        )
        return execute_plan(plan, self.device, clock, bitstream,
                            power_model=self._power_model)

    def effective_capacity(self, sample: PartialBitstream) -> DataSize:
        """How much raw bitstream fits after RLE, for this content."""
        compressed = self._codec.compress(sample.raw_bytes)
        ratio = len(sample.raw_bytes) / len(compressed)
        return DataSize(round(self.bram_capacity.bytes * ratio))
