"""Reconfiguration controllers: UPaRC and the Table III baselines.

Every controller implements the :class:`ReconfigurationController`
interface and returns a :class:`ReconfigurationResult`, so the
comparison harness (`repro.analysis.comparison`) can sweep them
uniformly:

* :class:`XpsHwicap`     — Xilinx's processor-driven controller
  (CompactFlash, cached, and the paper's unoptimized §V profile).
* :class:`BramHwicap`    — DMA from BRAM (Liu et al.).
* :class:`MstIcap`       — DMA from DDR2 SDRAM (Liu et al.).
* :class:`Farm`          — FaRM with RLE decompression (Duhem et al.).
* :class:`FlashCap`      — X-MatchPRO streaming (Nabina & Nunez-Yanez).
* :class:`UparcController` — UPaRC modes i (raw) and ii (compressed),
  an adapter over :class:`repro.core.system.UPaRCSystem`.
"""

from repro.controllers.base import (
    LargeBitstreamGrade,
    ReconfigurationController,
    ReconfigurationResult,
)
from repro.controllers.xps_hwicap import XpsHwicap
from repro.controllers.bram_hwicap import BramHwicap
from repro.controllers.mst_icap import MstIcap
from repro.controllers.farm import Farm
from repro.controllers.flashcap import FlashCap
from repro.controllers.uparc import UparcController

__all__ = [
    "LargeBitstreamGrade",
    "ReconfigurationController",
    "ReconfigurationResult",
    "XpsHwicap",
    "BramHwicap",
    "MstIcap",
    "Farm",
    "FlashCap",
    "UparcController",
]
