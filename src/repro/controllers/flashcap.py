"""FlashCAP — streaming X-MatchPRO decompression (Nabina &
Nunez-Yanez, FPL 2010).

Bitstreams are stored X-MatchPRO-compressed (grade ++ capacity) and
decompressed in line on the way to ICAP.  The decompressor's 32-bit
datapath at the 120 MHz system clock paces the output at ~0.75 words
per cycle — the 358 MB/s of Table III.  The paper's UPaRC_ii uses the
same algorithm with a 64-bit datapath, which is exactly where its
1008 vs 358 MB/s advantage comes from (the comparison the paper
highlights because "the same compression method" makes it apples to
apples).
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.generator import PartialBitstream
from repro.compress.xmatchpro import XMatchProCodec
from repro.controllers._harness import TransferPlan, execute_plan
from repro.controllers.base import (
    LargeBitstreamGrade,
    ReconfigurationController,
    ReconfigurationResult,
)
from repro.errors import ControllerError
from repro.power.model import ManagerState, PowerModel
from repro.units import DataSize, Frequency

# 32-bit X-MatchPRO datapath: output rate in words per system cycle,
# calibrated to Table III (0.746 x 120 MHz x 4 B = 358 MB/s).
FLASHCAP_WORDS_PER_CYCLE = 0.746


class FlashCap(ReconfigurationController):
    """Flash-stored, X-MatchPRO-streamed reconfiguration."""

    name = "FlashCAP_i"
    large_bitstream = LargeBitstreamGrade.COMPRESSED

    def __init__(self, device: DeviceInfo = VIRTEX5_SX50T,
                 power_model: Optional[PowerModel] = None) -> None:
        self.device = device
        self._codec = XMatchProCodec()
        self._power_model = power_model

    @property
    def max_frequency(self) -> Frequency:
        return Frequency.from_mhz(120)

    def reconfigure(self, bitstream: PartialBitstream,
                    frequency: Optional[Frequency] = None,
                    ) -> ReconfigurationResult:
        clock = frequency if frequency is not None else self.max_frequency
        if clock > self.max_frequency:
            raise ControllerError(
                f"FlashCAP limited to {self.max_frequency}, got {clock}"
            )
        compressed = self._codec.compress(bitstream.raw_bytes)
        if self._codec.decompress(compressed) != bitstream.raw_bytes:
            raise ControllerError("FlashCAP X-MatchPRO round-trip failed")
        words = list(bitstream.raw_words)
        cycles = round(len(words) / FLASHCAP_WORDS_PER_CYCLE)
        plan = TransferPlan(
            controller=self.name,
            mode="flash+xmatchpro",
            stored_size=DataSize(len(compressed)),
            output_words=words,
            transfer_ps=clock.duration_of(cycles),
            manager_state=ManagerState.WAIT,
            chain_active=True,
        )
        return execute_plan(plan, self.device, clock, bitstream,
                            power_model=self._power_model)
