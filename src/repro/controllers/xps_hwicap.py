"""xps_hwicap — Xilinx's processor-driven reconfiguration controller.

The reference baseline (Table III row 1).  Every configuration word
goes through the MicroBlaze: load from storage, store to the HWICAP
write FIFO, poll status.  Three measured profiles appear in the paper
and all three are modelled:

* ``compactflash`` — bitstreams on CF via SystemACE: ~180 KB/s end to
  end ("the throughput recorded of this controller is about
  180 KB/s").  Unlimited capacity (grade +++).
* ``cached`` — Liu et al.'s measurement with the bitstream in the
  processor cache: 14.5 MB/s, the Table III number.  (Their platform
  was a Virtex-4 PowerPC; the cycle cost is the same processor-bound
  loop either way, which is the paper's point about processor-driven
  controllers.)
* ``unoptimized`` — the paper's own Section V energy setup ("without
  processor optimizations, we achieve a reconfiguration throughput of
  1.5 MB/s"), the 30 uJ/KB reference point.
"""

from __future__ import annotations

from typing import Optional

from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.generator import PartialBitstream
from repro.controllers._harness import TransferPlan, execute_plan
from repro.controllers.base import (
    LargeBitstreamGrade,
    ReconfigurationController,
    ReconfigurationResult,
)
from repro.errors import ControllerError
from repro.fpga.memory import CompactFlash
from repro.power.model import ManagerState, PowerModel
from repro.units import Frequency

# Software copy-loop costs (cycles per 32-bit word at the processor
# clock), calibrated against the three published throughputs.
PROFILE_COPY_CYCLES = {
    "cached": 26,         # -> 14.7 MB/s at 100 MHz (paper: 14.5)
    "unoptimized": 254,   # -> 1.5 MB/s at 100 MHz (paper: 1.5)
    "compactflash": 610,  # driver overhead on top of the CF read
}


class XpsHwicap(ReconfigurationController):
    """Processor-driven HWICAP with selectable storage profile."""

    name = "xps_hwicap"
    large_bitstream = LargeBitstreamGrade.UNLIMITED

    def __init__(self, profile: str = "cached",
                 device: DeviceInfo = VIRTEX5_SX50T,
                 processor_frequency: Frequency = Frequency.from_mhz(100),
                 power_model: Optional[PowerModel] = None,
                 compact_flash: Optional[CompactFlash] = None) -> None:
        if profile not in PROFILE_COPY_CYCLES:
            raise ControllerError(
                f"unknown xps_hwicap profile {profile!r}; choose from "
                f"{sorted(PROFILE_COPY_CYCLES)}"
            )
        self.profile = profile
        self.device = device
        self.processor_frequency = processor_frequency
        self._power_model = power_model
        self._compact_flash = compact_flash if compact_flash is not None \
            else CompactFlash()

    @property
    def max_frequency(self) -> Frequency:
        """Bus/HWICAP core limit from the datasheet era."""
        return Frequency.from_mhz(120)

    @property
    def reference_frequency(self) -> Frequency:
        """Table III's 14.5 MB/s was measured at a 100 MHz processor."""
        return self.processor_frequency

    def reconfigure(self, bitstream: PartialBitstream,
                    frequency: Optional[Frequency] = None,
                    ) -> ReconfigurationResult:
        clock = frequency if frequency is not None \
            else self.processor_frequency
        if clock > self.max_frequency:
            raise ControllerError(
                f"xps_hwicap limited to {self.max_frequency}, got {clock}"
            )
        words = list(bitstream.raw_words)
        copy_cycles = PROFILE_COPY_CYCLES[self.profile] * len(words)
        transfer_ps = clock.duration_of(copy_cycles)
        if self.profile == "compactflash":
            transfer_ps += self._compact_flash.read_duration_ps(
                bitstream.size)
        plan = TransferPlan(
            controller=f"xps_hwicap[{self.profile}]",
            mode=self.profile,
            stored_size=bitstream.size,
            output_words=words,
            transfer_ps=transfer_ps,
            manager_state=ManagerState.COPY,
            chain_active=False,  # the ICAP trickle is negligible power
        )
        return execute_plan(plan, self.device, clock, bitstream,
                            power_model=self._power_model)
