"""Shared execution harness for the baseline controllers.

Every Table III baseline reduces to the same run shape: a manager
control lead, one long transfer phase whose duration the controller's
architecture determines, then a control tail — wrapped with power
sampling and ICAP integrity checking.  The controllers supply a
:class:`TransferPlan`; this harness turns it into a verified
:class:`~repro.controllers.base.ReconfigurationResult` on a fresh
simulator.

(UPaRC itself does *not* use this shortcut — it runs the full
Manager/UReC/DyCloGen process machinery in :mod:`repro.core.system`;
the baselines' published architectures are what the plans encode.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bitstream.device import DeviceInfo
from repro.bitstream.generator import PartialBitstream
from repro.results import ReconfigurationResult, stream_crc
from repro.fpga.config_memory import ConfigurationLogic, ConfigurationMemory
from repro.fpga.icap import Icap
from repro.obs import current_registry, current_tracer
from repro.obs.tracing import KernelObserver, TraceScope
from repro.power.energy import EnergyReport, energy_from_trace
from repro.power.model import ManagerState, PowerModel
from repro.power.trace import (
    CHAIN_TRACK,
    MANAGER_TRACK,
    PowerTraceBuilder,
)
from repro.sim import Clock, Delay, Process, Simulator
from repro.units import DataSize, Frequency

CONTROL_OVERHEAD_PS = 1_200_000  # same 120-cycle manager burst as UPaRC


@dataclass
class TransferPlan:
    """One baseline reconfiguration, reduced to its essentials."""

    controller: str
    mode: str                      # storage/mode label for the result
    stored_size: DataSize          # bytes in the staging store
    output_words: List[int]        # exact words ICAP must receive
    transfer_ps: int               # duration of the transfer phase
    manager_state: str             # COPY (processor-driven) or WAIT (DMA)
    chain_active: bool             # does the DMA chain power scale w/ f?
    control_overhead_ps: int = CONTROL_OVERHEAD_PS


def execute_plan(plan: TransferPlan, device: DeviceInfo,
                 frequency: Frequency, bitstream: PartialBitstream,
                 power_model: Optional[PowerModel] = None,
                 allow_overclock: bool = True) -> ReconfigurationResult:
    """Run a plan on a fresh simulator and verify the payload."""
    sim = Simulator()
    clock = Clock(sim, f"{plan.controller}.clk", frequency)
    logic = ConfigurationLogic(ConfigurationMemory(device))
    icap = Icap(sim, device, clock, allow_overclock=allow_overclock,
                config_logic=logic)
    model = power_model if power_model is not None else PowerModel()
    builder = PowerTraceBuilder(sim, model,
                                name=f"{plan.controller}.power")
    # Phase tracks announce the run's state machine; the power builder
    # subscribes and samples at every transition — the same instants
    # it used to be called at directly, so traces are unchanged.
    scope = TraceScope(sim, tracer=current_tracer(),
                       label=plan.controller)
    registry = current_registry()
    if scope.recording or registry.enabled:
        sim.observer = KernelObserver(scope, registry)
    scope.subscribe(builder)
    manager_track = scope.track(MANAGER_TRACK, cat="controller")
    chain_track = scope.track(CHAIN_TRACK, cat="power")

    timings = {}

    def run():
        lead = plan.control_overhead_ps // 2
        tail = plan.control_overhead_ps - lead
        manager_track.enter(ManagerState.CONTROL)
        yield Delay(lead)
        timings["start"] = sim.now
        manager_track.enter(plan.manager_state)
        if plan.chain_active:
            chain_track.enter("active", clk2_mhz=frequency.mhz)
        icap.enable()
        icap.reset_payload()
        icap.absorb(plan.output_words,
                    words_per_cycle=2.0)  # timing paced by transfer_ps
        yield Delay(plan.transfer_ps)
        icap.disable()
        if plan.chain_active:
            chain_track.exit()
        timings["finish"] = sim.now
        manager_track.enter(ManagerState.CONTROL)
        yield Delay(tail)
        manager_track.exit()

    Process(sim, run(), name=plan.controller)
    sim.run()
    trace = builder.finalize()

    start_ps = timings["start"]
    finish_ps = timings["finish"]
    energy = energy_from_trace(trace, start_ps, finish_ps)
    corrected = energy_from_trace(trace, start_ps, finish_ps,
                                  baseline_mw=model.idle_mw())
    duration_s = (finish_ps - start_ps) / 1e12
    result = ReconfigurationResult(
        controller=plan.controller,
        bitstream_size=bitstream.size,
        stored_size=plan.stored_size,
        mode=plan.mode,
        frequency=frequency,
        start_ps=start_ps,
        finish_ps=finish_ps,
        control_overhead_ps=plan.control_overhead_ps,
        words_delivered=icap.words_accepted,
        payload_crc=icap.payload_crc,
        expected_crc=stream_crc(bitstream.raw_bytes),
        frames_written=logic.frames_written,
        power_trace=trace,
        energy=EnergyReport(
            controller=plan.controller,
            bitstream=bitstream.size,
            duration_ps=finish_ps - start_ps,
            mean_power_mw=(energy / duration_s / 1e3
                           if duration_s > 0 else 0.0),
            energy_uj=energy,
            energy_uj_idle_corrected=corrected,
        ),
    )
    return result.require_verified()
