"""``repro.obs`` — unified observability: tracing, metrics, profiling.

Two strictly separated time domains:

* **sim-time** telemetry — spans, phase tracks, counters, metrics —
  is stamped with integer picoseconds from the event kernel and is a
  deterministic function of simulated work.
* **wall-clock** profiling lives only in :mod:`repro.obs.profiling`
  and records ``wall.*`` metrics that determinism checks never see.

Instrumentation is off by default and costs almost nothing when off:
the process registry defaults to :data:`~repro.obs.metrics.
NULL_REGISTRY` and the process tracer to ``None``, so instrumented
call sites execute a no-op method call or skip span bookkeeping
entirely.  The :func:`observed` context manager flips a command into
observed mode::

    with observed(trace=True, metrics=True) as obs:
        run_figure()
    write_chrome_trace(obs.tracer, "out.json")

Components never import the globals at call time through module
attributes they cache; they call :func:`current_tracer` /
:func:`current_registry` when *constructing* their scope, so a
long-lived system built inside ``observed()`` stays wired after the
block exits (useful for exporting afterwards).

See ``docs/observability.md`` for the architecture tour.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.export import (
    chrome_trace_events,
    load_chrome_trace,
    summarize_events,
    write_chrome_trace,
    write_ndjson,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.primitives import Interval, Sample
from repro.obs.profiling import Timer, WallProfiler
from repro.obs.tracing import (
    CounterSample,
    KernelObserver,
    PhaseTrack,
    SpanRecord,
    SpanSubscriber,
    Tracer,
    TraceScope,
)

__all__ = [
    # primitives
    "Sample", "Interval",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "DEFAULT_BUCKETS",
    # tracing
    "SpanRecord", "CounterSample", "SpanSubscriber", "Tracer",
    "TraceScope", "PhaseTrack", "KernelObserver",
    # profiling
    "Timer", "WallProfiler",
    # export
    "chrome_trace_events", "write_chrome_trace", "write_ndjson",
    "load_chrome_trace", "summarize_events",
    # process-wide wiring
    "current_tracer", "current_registry", "install", "observed",
    "Observation",
]

_tracer: Optional[Tracer] = None
_registry = NULL_REGISTRY


def current_tracer() -> Optional[Tracer]:
    """The process tracer, or ``None`` when tracing is off."""
    return _tracer


def current_registry():
    """The process metrics registry (a no-op one when metrics are off)."""
    return _registry


def install(tracer: Optional[Tracer] = None,
            registry=None) -> None:
    """Point the process globals at the given collectors.

    ``registry=None`` resets metrics to the no-op registry.  Prefer
    :func:`observed` in command code; ``install`` exists for worker
    processes that need to wire collectors without a ``with`` block.
    """
    global _tracer, _registry
    _tracer = tracer
    _registry = NULL_REGISTRY if registry is None else registry


class Observation:
    """Handle yielded by :func:`observed`: the live collectors."""

    __slots__ = ("tracer", "registry")

    def __init__(self, tracer: Optional[Tracer], registry) -> None:
        self.tracer = tracer
        self.registry = registry


@contextmanager
def observed(trace: bool = False,
             metrics: bool = False) -> Iterator[Observation]:
    """Enable tracing and/or metrics for the duration of the block.

    Systems constructed inside the block pick the collectors up via
    :func:`current_tracer`/:func:`current_registry`; the previous
    globals are restored on exit, and the yielded handle keeps the
    collectors alive for exporting.
    """
    tracer = Tracer() if trace else None
    registry = MetricsRegistry() if metrics else NULL_REGISTRY
    previous = (_tracer, _registry)
    install(tracer=tracer, registry=registry)
    try:
        yield Observation(tracer, registry)
    finally:
        install(tracer=previous[0], registry=previous[1])
