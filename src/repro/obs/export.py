"""Trace exporters: Chrome ``trace_event`` JSON, NDJSON, text summary.

The Chrome format is the JSON-object flavour (``{"traceEvents":
[...]}``), loadable in Perfetto and ``chrome://tracing``.  Simulation
picoseconds map onto the format's microsecond ``ts``/``dur`` fields by
dividing by 1e6; ``displayTimeUnit`` is nanoseconds so sub-µs spans
remain visible.  Output is a pure function of the collected records
(keys sorted, fixed event order), so traced runs can be compared as
golden files.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Union

from repro.obs.tracing import Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_ndjson",
    "load_chrome_trace",
    "summarize_events",
]

_PS_PER_US = 1e6


def _track_ids(tracer: Tracer) -> Dict[Any, int]:
    """(pid, track) -> tid, in first-appearance order per pid."""
    tids: Dict[Any, int] = {}
    nxt: Dict[int, int] = {}
    for span in tracer.spans:
        key = (span.pid, span.track)
        if key not in tids:
            tids[key] = nxt.get(span.pid, 0)
            nxt[span.pid] = tids[key] + 1
    return tids


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for a tracer's records."""
    events: List[Dict[str, Any]] = []
    for pid, label in enumerate(tracer.process_labels):
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": label}})
    tids = _track_ids(tracer)
    for (pid, track), tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": track}})
    for span in tracer.spans:
        event: Dict[str, Any] = {
            "ph": "X", "name": span.name, "cat": span.cat,
            "pid": span.pid, "tid": tids[(span.pid, span.track)],
            "ts": span.start_ps / _PS_PER_US,
            "dur": span.duration_ps / _PS_PER_US,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for sample in tracer.counters:
        events.append({
            "ph": "C", "name": sample.name, "pid": sample.pid, "tid": 0,
            "ts": sample.time_ps / _PS_PER_US,
            "args": {"value": sample.value},
        })
    return events


def write_chrome_trace(tracer: Tracer,
                       destination: Union[str, IO[str]]) -> int:
    """Write the Chrome-trace JSON object; returns the event count."""
    events = chrome_trace_events(tracer)
    payload = {"displayTimeUnit": "ns", "traceEvents": events}
    text = json.dumps(payload, sort_keys=True, indent=1)
    if hasattr(destination, "write"):
        destination.write(text + "\n")
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return len(events)


def write_ndjson(tracer: Tracer,
                 destination: Union[str, IO[str]]) -> int:
    """One record per line: spans then counters, collection order."""
    lines: List[str] = []
    for span in tracer.spans:
        lines.append(json.dumps(
            {"kind": "span", "name": span.name, "cat": span.cat,
             "pid": span.pid, "track": span.track,
             "start_ps": span.start_ps, "end_ps": span.end_ps,
             "args": span.args},
            sort_keys=True))
    for sample in tracer.counters:
        lines.append(json.dumps(
            {"kind": "counter", "name": sample.name, "pid": sample.pid,
             "time_ps": sample.time_ps, "value": sample.value},
            sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(lines)


def load_chrome_trace(path: str) -> List[Dict[str, Any]]:
    """Read a trace file back to its ``traceEvents`` list.

    Accepts both the JSON-object flavour this module writes and a bare
    JSON array of events.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        return list(payload.get("traceEvents", []))
    return list(payload)


def summarize_events(events: List[Dict[str, Any]]) -> str:
    """Human-readable roll-up of a ``traceEvents`` list.

    Groups complete ("X") events by name within category: count, total
    and mean duration; lists counter tracks with sample counts and
    extrema.  Durations print in simulated nanoseconds.
    """
    spans: Dict[Any, List[float]] = {}
    counters: Dict[str, List[float]] = {}
    for event in events:
        phase = event.get("ph")
        if phase == "X":
            key = (event.get("cat", ""), event.get("name", "?"))
            spans.setdefault(key, []).append(float(event.get("dur", 0.0)))
        elif phase == "C":
            values = event.get("args", {}).values()
            counters.setdefault(event.get("name", "?"), []).extend(
                float(v) for v in values)

    lines: List[str] = []
    if spans:
        lines.append(f"{'category':<14} {'span':<28} {'count':>6} "
                     f"{'total_ns':>12} {'mean_ns':>12}")
        for (cat, name), durations in sorted(spans.items()):
            total_us = sum(durations)
            lines.append(
                f"{cat:<14} {name:<28} {len(durations):>6} "
                f"{total_us * 1e3:>12.3f} "
                f"{total_us * 1e3 / len(durations):>12.3f}")
    if counters:
        if lines:
            lines.append("")
        lines.append(f"{'counter':<42} {'samples':>8} {'min':>10} "
                     f"{'max':>10}")
        for name, values in sorted(counters.items()):
            lines.append(f"{name:<42} {len(values):>8} "
                         f"{min(values):>10.6g} {max(values):>10.6g}")
    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines)
