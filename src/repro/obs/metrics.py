"""Metrics registry: counters, gauges, fixed-bucket histograms.

One registry instruments a bounded scope of work (a CLI command, one
sweep cell, one worker process).  Instruments are memoised by their
hierarchical dotted name (``icap.words_written``,
``sweep.cache.hits``), so hot paths fetch the instrument once and pay
a single attribute call per update.

Disabled by default: the process-wide registry is
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons —
an un-instrumented run allocates nothing and every update is one
no-op method call.  ``repro.obs.observed(registry=...)`` swaps a real
registry in for the duration of a command.

Two kinds of metric coexist:

* **deterministic** metrics (the default) derive only from simulated
  work — counts, simulated durations, byte totals.  Merging the
  per-worker registries of a sweep reproduces them exactly for any
  worker count.
* **wall** metrics (``wall=True``, conventionally named ``wall.*``)
  carry host timings from :mod:`repro.obs.profiling`.  They are
  excluded from :meth:`MetricsRegistry.snapshot` unless asked for, so
  determinism checks never see them.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

Number = Union[int, float]

#: Default histogram bucket upper bounds (powers of four — wide range,
#: few buckets).  Values above the last bound land in the overflow
#: bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0,
)


class Counter:
    """Monotonic accumulator."""

    __slots__ = ("name", "value", "wall")

    def __init__(self, name: str, wall: bool = False) -> None:
        self.name = name
        self.value: Number = 0
        self.wall = wall

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value (merge takes the maximum)."""

    __slots__ = ("name", "value", "wall")

    def __init__(self, name: str, wall: bool = False) -> None:
        self.name = name
        self.value: Number = 0
        self.wall = wall

    def set(self, value: Number) -> None:
        self.value = value

    def high_water(self, value: Number) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus overflow."""

    __slots__ = ("name", "bounds", "counts", "total", "count", "wall")

    def __init__(self, name: str,
                 bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
                 wall: bool = False) -> None:
        if tuple(sorted(bounds)) != tuple(bounds) or not bounds:
            raise ValueError(f"histogram {name!r}: bucket bounds must be "
                             f"a non-empty ascending sequence")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0
        self.wall = wall

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass

    def high_water(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Memoised instrument store with deterministic serialisation."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments --------------------------------------------------

    def counter(self, name: str, wall: bool = False) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name, wall=wall)
        return instrument

    def gauge(self, name: str, wall: bool = False) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name, wall=wall)
        return instrument

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
                  wall: bool = False) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds=bounds, wall=wall)
        return instrument

    # -- serialisation ------------------------------------------------

    def snapshot(self, include_wall: bool = False) -> Dict[str, Any]:
        """JSON-serialisable state, keys sorted.

        With ``include_wall=False`` (the default) wall-clock metrics
        are dropped, so the snapshot is a pure function of the
        simulated work — the property the sweep merge-determinism
        test asserts.
        """

        def keep(instrument) -> bool:
            return include_wall or not instrument.wall

        return {
            "counters": {c.name: c.value
                         for c in sorted(self._counters.values(),
                                         key=lambda c: c.name) if keep(c)},
            "gauges": {g.name: g.value
                       for g in sorted(self._gauges.values(),
                                       key=lambda g: g.name) if keep(g)},
            "histograms": {
                h.name: {"bounds": list(h.bounds), "counts": list(h.counts),
                         "total": h.total, "count": h.count}
                for h in sorted(self._histograms.values(),
                                key=lambda h: h.name) if keep(h)},
        }

    def merge_snapshot(self, snapshot: Dict[str, Any],
                       wall: bool = False) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms add; gauges keep the maximum.  The
        operation is associative and commutative over well-formed
        snapshots, which is why a parallel sweep's merged metrics
        cannot depend on worker scheduling.
        """
        for name in sorted(snapshot.get("counters", {})):
            self.counter(name, wall=wall).inc(snapshot["counters"][name])
        for name in sorted(snapshot.get("gauges", {})):
            self.gauge(name, wall=wall).high_water(
                snapshot["gauges"][name])
        for name in sorted(snapshot.get("histograms", {})):
            state = snapshot["histograms"][name]
            histogram = self.histogram(name, bounds=tuple(state["bounds"]),
                                       wall=wall)
            if histogram.bounds != tuple(state["bounds"]):
                raise ValueError(f"histogram {name!r}: bucket bounds "
                                 f"differ between merged registries")
            for index, count in enumerate(state["counts"]):
                histogram.counts[index] += count
            histogram.total += state["total"]
            histogram.count += state["count"]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another live registry into this one, wall flags kept.

        Same algebra as :meth:`merge_snapshot` — counters and
        histograms add, gauges keep the maximum — but over instrument
        objects, so wall metrics merge too (each instrument keeps its
        own ``wall`` flag).  Iteration is over sorted names, so the
        set of instruments this registry ends up creating (and hence
        its serialised form) is independent of the order in which the
        other registry created them — the property that lets per-board
        ``serve.*`` registries merge identically across worker counts.
        """
        for name in sorted(other._counters):
            source = other._counters[name]
            self.counter(name, wall=source.wall).inc(source.value)
        for name in sorted(other._gauges):
            source = other._gauges[name]
            self.gauge(name, wall=source.wall).high_water(source.value)
        for name in sorted(other._histograms):
            source = other._histograms[name]
            histogram = self.histogram(name, bounds=source.bounds,
                                       wall=source.wall)
            if histogram.bounds != source.bounds:
                raise ValueError(f"histogram {name!r}: bucket bounds "
                                 f"differ between merged registries")
            for index, count in enumerate(source.counts):
                histogram.counts[index] += count
            histogram.total += source.total
            histogram.count += source.count

    # -- reporting ----------------------------------------------------

    def rows(self, include_wall: bool = True) -> List[List[object]]:
        """``[name, kind, value]`` rows sorted by name (for tables)."""
        rows: List[List[object]] = []
        for counter in self._counters.values():
            if include_wall or not counter.wall:
                rows.append([counter.name, "counter", counter.value])
        for gauge in self._gauges.values():
            if include_wall or not gauge.wall:
                rows.append([gauge.name, "gauge", gauge.value])
        for histogram in self._histograms.values():
            if include_wall or not histogram.wall:
                rows.append([histogram.name, "histogram",
                             f"n={histogram.count} "
                             f"mean={histogram.mean:.6g}"])
        rows.sort(key=lambda row: row[0])
        return rows

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))


class NullRegistry:
    """Disabled registry: shared no-op instruments, no state.

    The process-wide default.  ``counter()``/``gauge()``/
    ``histogram()`` return module-level singletons, so the disabled
    hot path is one dictionary-free method call and zero allocations.
    """

    enabled = False

    def counter(self, name: str, wall: bool = False) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, wall: bool = False) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
                  wall: bool = False) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self, include_wall: bool = False) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, other: Any) -> None:
        pass

    def rows(self, include_wall: bool = True) -> List[List[object]]:
        return []

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
