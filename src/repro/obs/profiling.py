"""Wall-clock profiling — the only module allowed to read host clocks.

Everything else in the tree is simulation code and must be a pure
function of simulated state; the determinism lint rules (D101/D104)
enforce that by flagging ``time.*`` clock reads anywhere outside this
file.  Wall timings recorded here land in the registry as ``wall=True``
metrics under the ``wall.`` prefix, which
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` excludes by
default — so host noise can never leak into a determinism comparison.
"""

from __future__ import annotations

import time
from typing import Any, Optional

__all__ = ["Timer", "WallProfiler", "now_s"]


def now_s() -> float:
    """Monotonic wall-clock seconds (host time, non-deterministic)."""
    return time.perf_counter()


class Timer:
    """Context manager measuring elapsed wall seconds.

    ``elapsed_s`` is valid after exit (and live inside the block).
    Optionally feeds a registry histogram/counter pair on exit.
    """

    __slots__ = ("label", "_registry", "_start", "elapsed_s")

    def __init__(self, label: str = "",
                 registry: Optional[Any] = None) -> None:
        self.label = label
        self._registry = registry
        self._start = 0.0
        self.elapsed_s = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_s = time.perf_counter() - self._start
        if self._registry is not None and self.label:
            self._registry.histogram(
                f"wall.{self.label}_ms", wall=True,
            ).observe(self.elapsed_s * 1e3)


class WallProfiler:
    """Named wall-clock sections accumulated into one registry."""

    __slots__ = ("registry",)

    def __init__(self, registry: Any) -> None:
        self.registry = registry

    def section(self, label: str) -> Timer:
        return Timer(label, registry=self.registry)

    def record_s(self, label: str, seconds: float) -> None:
        """Record an externally measured duration (e.g. a worker's)."""
        self.registry.histogram(
            f"wall.{label}_ms", wall=True,
        ).observe(seconds * 1e3)
