"""Sim-time span tracing.

Every timestamp below is **simulation time** (integer picoseconds read
from ``Simulator.now``), so traces are deterministic: the same run
produces the same spans byte for byte, regardless of host load.
Wall-clock profiling is a different subsystem
(:mod:`repro.obs.profiling`) and never mixes with these records.

Three layers:

* :class:`Tracer` — the process-wide collector.  Not bound to any
  simulator; each simulator that joins registers itself and gets a
  Chrome-trace process id, which is how a sweep over many independent
  sims (each restarting at t=0) stays readable in Perfetto.
* :class:`TraceScope` — the per-simulator facade components hold.  It
  reads ``sim.now``, forwards to the tracer (when one is installed)
  and to any :class:`SpanSubscriber` (always).  With no tracer and no
  subscribers, ``span()`` returns a shared no-op context manager —
  the disabled path allocates nothing.
* :class:`PhaseTrack` — sequential, non-overlapping spans on one named
  track (a controller's ``control → wait → control`` life cycle).
  ``enter()`` closes the previous phase and opens the next in one
  call, mirroring exactly the state-machine transitions the power
  model samples — which is how :class:`~repro.power.trace.
  PowerTraceBuilder` can be a plain subscriber and still reproduce
  its historical traces sample for sample.

Subscribers receive ``on_span_begin`` / ``on_span_end`` for nested
spans and ``on_phase`` for track transitions (``phase=None`` meaning
the track went idle).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SpanRecord",
    "CounterSample",
    "SpanSubscriber",
    "Tracer",
    "TraceScope",
    "PhaseTrack",
    "KernelObserver",
]


class SpanRecord:
    """One closed span: a named interval on a (pid, track) lane."""

    __slots__ = ("name", "cat", "pid", "track", "start_ps", "end_ps",
                 "args")

    def __init__(self, name: str, cat: str, pid: int, track: str,
                 start_ps: int, end_ps: int,
                 args: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.cat = cat
        self.pid = pid
        self.track = track
        self.start_ps = start_ps
        self.end_ps = end_ps
        self.args = args

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps

    def __repr__(self) -> str:
        return (f"SpanRecord({self.name!r}, cat={self.cat!r}, "
                f"[{self.start_ps}, {self.end_ps}] ps)")


class CounterSample:
    """One timestamped value on a counter track (e.g. queue depth)."""

    __slots__ = ("name", "pid", "time_ps", "value")

    def __init__(self, name: str, pid: int, time_ps: int,
                 value: float) -> None:
        self.name = name
        self.pid = pid
        self.time_ps = time_ps
        self.value = value


class SpanSubscriber:
    """Base class for streaming span consumers (all hooks no-ops)."""

    def on_span_begin(self, name: str, cat: str, time_ps: int,
                      args: Optional[Dict[str, Any]]) -> None:
        pass

    def on_span_end(self, name: str, cat: str, time_ps: int,
                    args: Optional[Dict[str, Any]]) -> None:
        pass

    def on_phase(self, track: str, phase: Optional[str], time_ps: int,
                 args: Optional[Dict[str, Any]]) -> None:
        pass


class Tracer:
    """Process-wide span/counter collector shared by many sims."""

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.counters: List[CounterSample] = []
        self.process_labels: List[str] = []

    def register(self, label: str) -> int:
        """Join a simulator under ``label``; returns its trace pid."""
        self.process_labels.append(label)
        return len(self.process_labels) - 1

    def add_span(self, record: SpanRecord) -> None:
        self.spans.append(record)

    def add_counter(self, sample: CounterSample) -> None:
        self.counters.append(sample)

    def __len__(self) -> int:
        return len(self.spans) + len(self.counters)


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one nested span on a scope."""

    __slots__ = ("_scope", "_name", "_cat", "_args", "_start")

    def __init__(self, scope: "TraceScope", name: str, cat: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._scope = scope
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = self._scope._begin(self._name, self._cat,
                                         self._args)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._scope._end(self._name, self._cat, self._start, self._args)


class PhaseTrack:
    """Sequential phases on one named lane; at most one open at a time.

    ``enter("wait")`` atomically closes the current phase (recording
    its span) and opens ``wait`` — one subscriber callback per
    transition, exactly mirroring a state-machine assignment.
    ``exit()`` closes the track (``phase=None`` to subscribers).
    """

    __slots__ = ("_scope", "name", "cat", "_current")

    def __init__(self, scope: "TraceScope", name: str, cat: str) -> None:
        self._scope = scope
        self.name = name
        self.cat = cat
        #: (phase, start_ps, args) of the open phase, or None.
        self._current: Optional[Tuple[str, int,
                                      Optional[Dict[str, Any]]]] = None

    def enter(self, phase: str, **args: Any) -> None:
        scope = self._scope
        now = scope.sim.now
        self._close(now)
        self._current = (phase, now, args or None)
        for subscriber in scope.subscribers:
            subscriber.on_phase(self.name, phase, now, args or None)

    def exit(self) -> None:
        scope = self._scope
        now = scope.sim.now
        self._close(now)
        for subscriber in scope.subscribers:
            subscriber.on_phase(self.name, None, now, None)

    def _close(self, now: int) -> None:
        if self._current is None:
            return
        phase, start, args = self._current
        self._current = None
        tracer = self._scope.tracer
        if tracer is not None:
            tracer.add_span(SpanRecord(
                name=f"{self.name}.{phase}", cat=self.cat,
                pid=self._scope.pid, track=self.name,
                start_ps=start, end_ps=now, args=args))


class TraceScope:
    """Per-simulator tracing facade.

    ``tracer=None`` (the default) records nothing but still drives
    subscribers, which is how power sampling works on untraced runs.
    With neither tracer nor subscribers the scope is inert:
    :meth:`span` hands back a shared no-op context manager.
    """

    def __init__(self, sim: Any, tracer: Optional[Tracer] = None,
                 label: str = "sim") -> None:
        self.sim = sim
        self.tracer = tracer
        self.label = label
        self.pid = tracer.register(label) if tracer is not None else 0
        self.subscribers: List[SpanSubscriber] = []
        self._tracks: Dict[str, PhaseTrack] = {}

    @property
    def recording(self) -> bool:
        """Whether span records are being collected for export."""
        return self.tracer is not None

    @property
    def active(self) -> bool:
        return self.tracer is not None or bool(self.subscribers)

    # -- subscribers --------------------------------------------------

    def subscribe(self, subscriber: SpanSubscriber) -> None:
        self.subscribers.append(subscriber)

    def unsubscribe(self, subscriber: SpanSubscriber) -> None:
        self.subscribers.remove(subscriber)

    # -- nested spans -------------------------------------------------

    def span(self, name: str, cat: str = "sim", **args: Any):
        """Context manager timing a sim-time span; free when inert."""
        if self.tracer is None and not self.subscribers:
            return _NULL_SPAN
        return _Span(self, name, cat, args or None)

    def instant(self, name: str, cat: str = "sim",
                **args: Any) -> None:
        """A zero-duration marker event."""
        if self.tracer is None and not self.subscribers:
            return
        now = self.sim.now
        if self.tracer is not None:
            self.tracer.add_span(SpanRecord(
                name=name, cat=cat, pid=self.pid, track=cat,
                start_ps=now, end_ps=now, args=args or None))

    def counter_sample(self, name: str, value: float,
                       time_ps: Optional[int] = None) -> None:
        """Record a point on a counter track (queue depth, backlog)."""
        if self.tracer is None:
            return
        self.tracer.add_counter(CounterSample(
            name=name, pid=self.pid,
            time_ps=self.sim.now if time_ps is None else time_ps,
            value=value))

    # -- phase tracks -------------------------------------------------

    def track(self, name: str, cat: str = "sim") -> PhaseTrack:
        """The (memoised) phase track called ``name``."""
        existing = self._tracks.get(name)
        if existing is None:
            existing = self._tracks[name] = PhaseTrack(self, name, cat)
        return existing

    # -- span plumbing ------------------------------------------------

    def _begin(self, name: str, cat: str,
               args: Optional[Dict[str, Any]]) -> int:
        now = self.sim.now
        for subscriber in self.subscribers:
            subscriber.on_span_begin(name, cat, now, args)
        return now

    def _end(self, name: str, cat: str, start_ps: int,
             args: Optional[Dict[str, Any]]) -> None:
        now = self.sim.now
        if self.tracer is not None:
            self.tracer.add_span(SpanRecord(
                name=name, cat=cat, pid=self.pid, track=cat,
                start_ps=start_ps, end_ps=now, args=args))
        for subscriber in self.subscribers:
            subscriber.on_span_end(name, cat, now, args)


class KernelObserver:
    """Event-kernel instrumentation the simulator calls when attached.

    Counts dispatched events into the metrics registry and samples the
    queue depth onto a counter track every ``queue_sample_interval``
    events — both derived purely from simulated state, so an observed
    run's telemetry is deterministic.  The kernel only calls these
    hooks when an observer is attached; the unobserved dispatch loop
    is untouched (see ``Simulator.run``).
    """

    __slots__ = ("_scope", "_events", "_runs", "_interval", "_seen",
                 "_run_depth")

    def __init__(self, scope: TraceScope, registry: Any = None,
                 queue_sample_interval: int = 256) -> None:
        if registry is None:
            from repro.obs.metrics import NULL_REGISTRY
            registry = NULL_REGISTRY
        self._scope = scope
        self._events = registry.counter("kernel.events_dispatched")
        self._runs = registry.counter("kernel.runs")
        self._interval = max(1, int(queue_sample_interval))
        self._seen = 0
        self._run_depth = 0

    def run_started(self, time_ps: int, pending: int) -> None:
        # run() can nest through run_until_idle-style helpers on some
        # call paths; only the outermost run opens the span.
        self._run_depth += 1
        if self._run_depth == 1:
            self._runs.inc()
            self._scope.track("kernel", cat="kernel").enter("run")
            self._scope.counter_sample("kernel.queue_depth", pending,
                                       time_ps=time_ps)

    def run_finished(self, time_ps: int, pending: int) -> None:
        self._run_depth -= 1
        if self._run_depth == 0:
            self._scope.counter_sample("kernel.queue_depth", pending,
                                       time_ps=time_ps)
            self._scope.track("kernel", cat="kernel").exit()

    def event_fired(self, time_ps: int, depth: int) -> None:
        self._events.inc()
        self._seen += 1
        if self._seen % self._interval == 0:
            self._scope.counter_sample("kernel.queue_depth", depth,
                                       time_ps=time_ps)
