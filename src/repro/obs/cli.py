"""``python -m repro obs`` — summarise a recorded trace file."""

from __future__ import annotations

import argparse

from repro.obs.export import load_chrome_trace, summarize_events

__all__ = ["add_obs_arguments", "run_obs"]


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace_file",
                        help="Chrome-trace JSON written by --trace")
    parser.add_argument("--cat", default=None,
                        help="only summarise spans in this category")


def run_obs(args: argparse.Namespace) -> int:
    try:
        events = load_chrome_trace(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"obs: cannot read {args.trace_file}: {error}")
        return 2
    if args.cat is not None:
        events = [event for event in events
                  if event.get("ph") != "X"
                  or event.get("cat") == args.cat]
    print(summarize_events(events))
    return 0
