"""Shared telemetry value types.

Before ``repro.obs`` existed, :mod:`repro.sim.trace` and
:mod:`repro.power.trace` each grew their own recorder around a
copy-pasted timestamped-sample shape.  The primitives live here now —
one definition, re-exported from the historical locations — so every
recorder in the tree agrees on what a sample and an interval are.

All timestamps are simulation time in integer picoseconds (the
kernel's clock).  Wall-clock quantities never appear in these types;
they are confined to :mod:`repro.obs.profiling`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

__all__ = ["Sample", "Interval"]


@dataclass(frozen=True)
class Sample:
    """One timestamped scalar observation (e.g. power in mW)."""

    time_ps: int
    value: float


class Interval(NamedTuple):
    """A half-open activity window ``[begin_ps, end_ps)``.

    A ``NamedTuple`` rather than a dataclass so existing code (and
    tests) that treat intervals as plain ``(begin, end)`` tuples keep
    working unchanged.
    """

    begin_ps: int
    end_ps: int

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.begin_ps
