"""X-MatchPRO codec — the scheme UPaRC's hardware decompressor runs.

X-MatchPRO (Nunez & Jones, IEEE TVLSI 2003) is a dictionary codec
designed for gigabit-rate hardware: data is processed as 32-bit
**tuples** against a small content-addressable dictionary maintained
move-to-front.  Each tuple is coded as

* a **full or partial match**: dictionary location + a *match type*
  telling which of the four bytes matched; unmatched bytes follow as
  literals.  Partial matches (>= 2 matching bytes) are what the "X"
  adds over simple dictionary schemes.
* a **miss**: the raw tuple, which is then inserted at the dictionary
  front.
* a **zero run**: X-MatchPRO's run-length extension for the all-zero
  tuples that dominate configuration bitstreams.

Token prefixes: ``0`` match, ``10`` zero-run, ``11`` miss.  Match types
use a static prefix code ordered by typical frequency (full match gets
the 1-bit code).  The dictionary update policy on both hits and misses
is insert-at-front (move-to-front on hit), as in the hardware.

Stream layout::

    [4-byte original length][1-byte tail length][tail bytes]
    bit stream of tokens
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro import accel
from repro.compress.base import Codec
from repro.compress.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError

_ZERO_TUPLE = b"\x00\x00\x00\x00"
_RUN_CHUNK_BITS = 8
_RUN_CHUNK_MAX = (1 << _RUN_CHUNK_BITS) - 1

# Match-type static code: mask bit i set => byte i matched.
# (code, length) pairs; prefix-free by construction (see tests).
_MASK_CODES: Dict[int, Tuple[int, int]] = {
    0b1111: (0b0, 1),
    0b1110: (0b1000, 4),
    0b1101: (0b1001, 4),
    0b1011: (0b1010, 4),
    0b0111: (0b1011, 4),
    0b1100: (0b11000, 5),
    0b1010: (0b11001, 5),
    0b1001: (0b11010, 5),
    0b0110: (0b11011, 5),
    0b0101: (0b11100, 5),
    0b0011: (0b11101, 5),
}
_MIN_MATCH_BYTES = 2


def _index_bits(dictionary_size: int) -> int:
    """Phased-binary width for indices 0..dictionary_size-1."""
    width = 1
    while (1 << width) < dictionary_size:
        width += 1
    return width


class XMatchProCodec(Codec):
    """Word-tuple CAM-dictionary codec with zero-run extension."""

    name = "X-MatchPRO"

    def __init__(self, dictionary_size: int = 8) -> None:
        if not 2 <= dictionary_size <= 64:
            raise ValueError("dictionary size must be in [2, 64]")
        self._capacity = dictionary_size

    # -- compression --------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        tuple_count = len(data) // 4
        tail = data[tuple_count * 4:]
        header = struct.pack(">I", len(data)) + bytes([len(tail)]) + tail

        # Zero runs dominate configuration payloads; the accel kernel
        # finds every maximal zero-tuple run up front, so the coding
        # loop jumps over them without touching the words.  The loop
        # only ever reaches a zero tuple at its run's start (it
        # consumes whole runs and stops non-zero scans at the first
        # zero word), so a start-keyed dict covers every case.  Each
        # token is emitted with a single write_bits call (prefix,
        # payload and literals packed into one integer) — the hot
        # loop does no per-bit work.
        starts, lengths = accel.zero_word_runs(data, tuple_count)
        zero_runs = dict(zip(starts, lengths))
        writer = BitWriter()
        write_bits = writer.write_bits
        dictionary: List[bytes] = []
        index = 0
        while index < tuple_count:
            run = zero_runs.get(index)
            if run is not None:
                token = 0b10
                width = 2
                remaining = run
                while remaining >= _RUN_CHUNK_MAX:
                    token = (token << _RUN_CHUNK_BITS) | _RUN_CHUNK_MAX
                    width += _RUN_CHUNK_BITS
                    remaining -= _RUN_CHUNK_MAX
                token = (token << _RUN_CHUNK_BITS) | remaining
                width += _RUN_CHUNK_BITS
                write_bits(token, width)
                index += run
                continue
            word = data[index * 4:index * 4 + 4]
            location, mask = self._best_match(dictionary, word)
            if location is not None and mask is not None:
                code, length = _MASK_CODES[mask]
                # Leading 0 prefix bit is the extra width bit.
                token = (location << length) | code
                width = 1 + _index_bits(len(dictionary)) + length
                for byte_index in range(4):
                    if not (mask >> byte_index) & 1:
                        token = (token << 8) | word[byte_index]
                        width += 8
                write_bits(token, width)
                self._update_hit(dictionary, location, word)
            else:
                write_bits((0b11 << 32) | int.from_bytes(word, "big"), 34)
                self._insert(dictionary, word)
            index += 1
        return header + writer.getvalue()

    def _best_match(self, dictionary: List[bytes],
                    word: bytes) -> Tuple[Optional[int], Optional[int]]:
        best_location: Optional[int] = None
        best_mask: Optional[int] = None
        best_score = -1
        mask_codes = _MASK_CODES
        for location, entry in enumerate(dictionary):
            if entry == word:
                # Full match scores 31 bits saved — strictly above any
                # partial match, and earlier locations win ties, so the
                # first full match is always the answer.
                return location, 0b1111
            mask = 0
            matched = 0
            for byte_index in range(4):
                if entry[byte_index] == word[byte_index]:
                    mask |= 1 << byte_index
                    matched += 1
            if matched < _MIN_MATCH_BYTES or mask not in mask_codes:
                continue
            # Score: coded bits saved; prefer more matched bytes, then
            # earlier (cheaper, more recently used) locations.
            score = matched * 8 - mask_codes[mask][1]
            if score > best_score:
                best_score = score
                best_location = location
                best_mask = mask
        return best_location, best_mask

    def _update_hit(self, dictionary: List[bytes], location: int,
                    word: bytes) -> None:
        del dictionary[location]
        dictionary.insert(0, word)

    def _insert(self, dictionary: List[bytes], word: bytes) -> None:
        dictionary.insert(0, word)
        if len(dictionary) > self._capacity:
            dictionary.pop()

    @staticmethod
    def _write_run(writer: BitWriter, run: int) -> None:
        # Chunked counter: 0xFF chunks mean "255 and continue".
        remaining = run
        while remaining >= _RUN_CHUNK_MAX:
            writer.write_bits(_RUN_CHUNK_MAX, _RUN_CHUNK_BITS)
            remaining -= _RUN_CHUNK_MAX
        writer.write_bits(remaining, _RUN_CHUNK_BITS)

    # -- decompression -------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 5:
            raise CorruptStreamError("X-MatchPRO stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        tail_length = data[4]
        if tail_length > 3:
            raise CorruptStreamError(f"invalid tail length {tail_length}")
        tail = data[5:5 + tail_length]
        if len(tail) != tail_length:
            raise CorruptStreamError("truncated tail")
        reader = BitReader(data[5 + tail_length:])

        body_length = original_length - tail_length
        out = bytearray()
        dictionary: List[bytes] = []
        while len(out) < body_length:
            if reader.read_bit() == 0:
                if not dictionary:
                    raise CorruptStreamError("match against empty dictionary")
                location = reader.read_bits(_index_bits(len(dictionary)))
                if location >= len(dictionary):
                    raise CorruptStreamError(
                        f"dictionary location {location} out of range"
                    )
                mask = self._read_mask(reader)
                entry = dictionary[location]
                word = bytearray(4)
                for byte_index in range(4):
                    if (mask >> byte_index) & 1:
                        word[byte_index] = entry[byte_index]
                    else:
                        word[byte_index] = reader.read_bits(8)
                word_bytes = bytes(word)
                out += word_bytes
                self._update_hit(dictionary, location, word_bytes)
            else:
                if reader.read_bit() == 0:  # '10' zero run
                    run = self._read_run(reader)
                    out += _ZERO_TUPLE * run
                else:  # '11' miss
                    word_bytes = reader.read_bytes(4)
                    out += word_bytes
                    self._insert(dictionary, word_bytes)
        if len(out) != body_length:
            raise CorruptStreamError("X-MatchPRO length mismatch")
        return bytes(out) + tail

    @staticmethod
    def _read_mask(reader: BitReader) -> int:
        if reader.read_bit() == 0:
            return 0b1111
        if reader.read_bit() == 0:
            # '10' + 2 bits: the four 3-byte masks.
            return (0b1110, 0b1101, 0b1011, 0b0111)[reader.read_bits(2)]
        # '11' + 3 bits: the six 2-byte masks.
        selector = reader.read_bits(3)
        table = (0b1100, 0b1010, 0b1001, 0b0110, 0b0101, 0b0011)
        if selector >= len(table):
            raise CorruptStreamError(f"invalid match-type code {selector}")
        return table[selector]

    @staticmethod
    def _read_run(reader: BitReader) -> int:
        run = 0
        while True:
            chunk = reader.read_bits(_RUN_CHUNK_BITS)
            run += chunk
            if chunk != _RUN_CHUNK_MAX:
                break
        if run == 0:
            raise CorruptStreamError("zero-length zero run")
        return run
