"""X-MatchPRO codec — the scheme UPaRC's hardware decompressor runs.

X-MatchPRO (Nunez & Jones, IEEE TVLSI 2003) is a dictionary codec
designed for gigabit-rate hardware: data is processed as 32-bit
**tuples** against a small content-addressable dictionary maintained
move-to-front.  Each tuple is coded as

* a **full or partial match**: dictionary location + a *match type*
  telling which of the four bytes matched; unmatched bytes follow as
  literals.  Partial matches (>= 2 matching bytes) are what the "X"
  adds over simple dictionary schemes.
* a **miss**: the raw tuple, which is then inserted at the dictionary
  front.
* a **zero run**: X-MatchPRO's run-length extension for the all-zero
  tuples that dominate configuration bitstreams.

Token prefixes: ``0`` match, ``10`` zero-run, ``11`` miss.  Match types
use a static prefix code ordered by typical frequency (full match gets
the 1-bit code).  The dictionary update policy on both hits and misses
is insert-at-front (move-to-front on hit), as in the hardware.

Stream layout::

    [4-byte original length][1-byte tail length][tail bytes]
    bit stream of tokens
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro import accel
from repro.compress.base import Codec
from repro.errors import CorruptStreamError

_ZERO_TUPLE = b"\x00\x00\x00\x00"
_RUN_CHUNK_BITS = 8
_RUN_CHUNK_MAX = (1 << _RUN_CHUNK_BITS) - 1

# Match-type static code: mask bit i set => byte i matched.
# (code, length) pairs; prefix-free by construction (see tests).
# The table is owned by the accel package (the encoder kernel derives
# its scoring tables from it); this is the same object.
_MASK_CODES: Dict[int, Tuple[int, int]] = accel.XMATCH_MASK_CODES
_MIN_MATCH_BYTES = 2

# Decoder peek table: the match-type code is at most 5 bits, so one
# 5-bit window lookup replaces the bit-by-bit prefix walk.  ``None``
# marks the two unassigned 5-bit patterns (selectors 6 and 7 under
# the ``11`` prefix).
_MASK_PEEK: List[Optional[Tuple[int, int]]] = [None] * 32
for _mask, (_code, _length) in _MASK_CODES.items():
    for _pad in range(1 << (5 - _length)):
        _MASK_PEEK[(_code << (5 - _length)) | _pad] = (_mask, _length)
del _mask, _code, _length, _pad

# Unmatched-byte positions per match mask, in stream order.
_LITERAL_LANES: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(index for index in range(4) if not (mask >> index) & 1)
    for mask in range(16)
)


def _index_bits(dictionary_size: int) -> int:
    """Phased-binary width for indices 0..dictionary_size-1."""
    width = 1
    while (1 << width) < dictionary_size:
        width += 1
    return width


class XMatchProCodec(Codec):
    """Word-tuple CAM-dictionary codec with zero-run extension."""

    name = "X-MatchPRO"

    def __init__(self, dictionary_size: int = 8) -> None:
        if not 2 <= dictionary_size <= 64:
            raise ValueError("dictionary size must be in [2, 64]")
        self._capacity = dictionary_size

    # -- compression --------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        tuple_count = len(data) // 4
        tail = data[tuple_count * 4:]
        header = struct.pack(">I", len(data)) + bytes([len(tail)]) + tail
        # The whole coding loop — zero-run skip, dictionary search,
        # move-to-front update — lives in the accel kernel, which
        # returns the token stream as typed arrays; one bit-pack call
        # turns it into the (digest-pinned) historical byte stream.
        values, widths = accel.xmatch_tokens(data, tuple_count,
                                             self._capacity)
        return header + accel.bitpack(values, widths)

    # -- decompression -------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 5:
            raise CorruptStreamError("X-MatchPRO stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        tail_length = data[4]
        if tail_length > 3:
            raise CorruptStreamError(f"invalid tail length {tail_length}")
        tail = data[5:5 + tail_length]
        if len(tail) != tail_length:
            raise CorruptStreamError("truncated tail")
        body = data[5 + tail_length:]
        body_length = original_length - tail_length

        # Inline bit cursor: ``acc`` holds at least ``bits`` valid low
        # bits (higher bits are stale and masked off on refill).  One
        # refill per loop covers any fixed-layout token — a miss is 34
        # bits, a match at most 1 + 6 + 5 + 16 = 28 — so the token
        # parse runs without per-field reader calls; zero runs refill
        # per 8-bit chunk.  Exhaustion checks mirror the historical
        # per-field reads exactly (same error, same point of failure).
        mask_peek = _MASK_PEEK
        literal_bytes = _LITERAL_LANES
        index_width = [_index_bits(size) if size else 1
                       for size in range(self._capacity + 1)]
        index_mask = [(1 << width) - 1 for width in index_width]
        from_bytes = int.from_bytes
        out = bytearray()
        dictionary: List[bytes] = []
        acc = 0
        bits = 0
        position = 0
        body_len = len(body)
        while len(out) < body_length:
            if bits < 42:
                take = body_len - position
                if take > 6:
                    take = 6
                if take:
                    acc = ((acc & ((1 << bits) - 1)) << (take * 8)) \
                        | from_bytes(body[position:position + take],
                                     "big")
                    position += take
                    bits += take * 8
            if not bits:
                raise CorruptStreamError("bit stream exhausted")
            bits -= 1
            if not (acc >> bits) & 1:  # '0': dictionary match
                size = len(dictionary)
                if not size:
                    raise CorruptStreamError("match against empty dictionary")
                width = index_width[size]
                if width > bits:
                    raise CorruptStreamError("bit stream exhausted")
                bits -= width
                location = (acc >> bits) & index_mask[size]
                if location >= size:
                    raise CorruptStreamError(
                        f"dictionary location {location} out of range"
                    )
                if bits >= 5:
                    peek = (acc >> (bits - 5)) & 0b11111
                else:
                    peek = (acc & ((1 << bits) - 1)) << (5 - bits)
                entry = mask_peek[peek]
                if entry is None:
                    # Both unassigned patterns start '11'; the decoder
                    # only reaches the 3-bit selector with 5 bits left.
                    if bits < 5:
                        raise CorruptStreamError("bit stream exhausted")
                    raise CorruptStreamError(
                        f"invalid match-type code {peek & 0b111}"
                    )
                mask, width = entry
                if width > bits:
                    raise CorruptStreamError("bit stream exhausted")
                bits -= width
                matched = dictionary[location]
                if mask == 0b1111:
                    word_bytes = matched
                else:
                    word = bytearray(matched)
                    for byte_index in literal_bytes[mask]:
                        if bits < 8:
                            raise CorruptStreamError("bit stream exhausted")
                        bits -= 8
                        word[byte_index] = (acc >> bits) & 0xFF
                    word_bytes = bytes(word)
                out += word_bytes
                del dictionary[location]
                dictionary.insert(0, word_bytes)
            else:
                if not bits:
                    raise CorruptStreamError("bit stream exhausted")
                bits -= 1
                if not (acc >> bits) & 1:  # '10': zero run
                    run = 0
                    while True:
                        if bits < 8:
                            take = body_len - position
                            if take > 6:
                                take = 6
                            if take:
                                acc = ((acc & ((1 << bits) - 1))
                                       << (take * 8)) \
                                    | from_bytes(
                                        body[position:position + take],
                                        "big")
                                position += take
                                bits += take * 8
                            if bits < 8:
                                raise CorruptStreamError(
                                    "bit stream exhausted")
                        bits -= 8
                        chunk = (acc >> bits) & 0xFF
                        run += chunk
                        if chunk != _RUN_CHUNK_MAX:
                            break
                    if run == 0:
                        raise CorruptStreamError("zero-length zero run")
                    out += _ZERO_TUPLE * run
                else:  # '11': miss
                    if bits < 32:
                        raise CorruptStreamError("bit stream exhausted")
                    bits -= 32
                    word_bytes = ((acc >> bits)
                                  & 0xFFFFFFFF).to_bytes(4, "big")
                    out += word_bytes
                    dictionary.insert(0, word_bytes)
                    if len(dictionary) > self._capacity:
                        dictionary.pop()
        if len(out) != body_length:
            raise CorruptStreamError("X-MatchPRO length mismatch")
        return bytes(out) + tail
