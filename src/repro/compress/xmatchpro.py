"""X-MatchPRO codec — the scheme UPaRC's hardware decompressor runs.

X-MatchPRO (Nunez & Jones, IEEE TVLSI 2003) is a dictionary codec
designed for gigabit-rate hardware: data is processed as 32-bit
**tuples** against a small content-addressable dictionary maintained
move-to-front.  Each tuple is coded as

* a **full or partial match**: dictionary location + a *match type*
  telling which of the four bytes matched; unmatched bytes follow as
  literals.  Partial matches (>= 2 matching bytes) are what the "X"
  adds over simple dictionary schemes.
* a **miss**: the raw tuple, which is then inserted at the dictionary
  front.
* a **zero run**: X-MatchPRO's run-length extension for the all-zero
  tuples that dominate configuration bitstreams.

Token prefixes: ``0`` match, ``10`` zero-run, ``11`` miss.  Match types
use a static prefix code ordered by typical frequency (full match gets
the 1-bit code).  The dictionary update policy on both hits and misses
is insert-at-front (move-to-front on hit), as in the hardware.

Stream layout::

    [4-byte original length][1-byte tail length][tail bytes]
    bit stream of tokens
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro import accel
from repro.compress.base import Codec
from repro.errors import CorruptStreamError

_ZERO_TUPLE = b"\x00\x00\x00\x00"
_RUN_CHUNK_BITS = 8
_RUN_CHUNK_MAX = (1 << _RUN_CHUNK_BITS) - 1

# Match-type static code: mask bit i set => byte i matched.
# (code, length) pairs; prefix-free by construction (see tests).
# The table is owned by the accel package (both the encoder and the
# decoder kernels derive their tables from it); this is the same
# object.
_MASK_CODES: Dict[int, Tuple[int, int]] = accel.XMATCH_MASK_CODES
_MIN_MATCH_BYTES = 2


class XMatchProCodec(Codec):
    """Word-tuple CAM-dictionary codec with zero-run extension."""

    name = "X-MatchPRO"

    def __init__(self, dictionary_size: int = 8) -> None:
        if not 2 <= dictionary_size <= 64:
            raise ValueError("dictionary size must be in [2, 64]")
        self._capacity = dictionary_size

    # -- compression --------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        tuple_count = len(data) // 4
        tail = data[tuple_count * 4:]
        header = struct.pack(">I", len(data)) + bytes([len(tail)]) + tail
        # The whole coding loop — zero-run skip, dictionary search,
        # move-to-front update — lives in the accel kernel, which
        # returns the token stream as typed arrays; one bit-pack call
        # turns it into the (digest-pinned) historical byte stream.
        values, widths = accel.xmatch_tokens(data, tuple_count,
                                             self._capacity)
        return header + accel.bitpack(values, widths)

    # -- decompression -------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 5:
            raise CorruptStreamError("X-MatchPRO stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        tail_length = data[4]
        if tail_length > 3:
            raise CorruptStreamError(f"invalid tail length {tail_length}")
        tail = data[5:5 + tail_length]
        if len(tail) != tail_length:
            raise CorruptStreamError("truncated tail")
        body = data[5 + tail_length:]
        body_length = original_length - tail_length

        # The whole token-decode loop — bit cursor, match-type peek,
        # move-to-front dictionary replay — is the ``xmatch_decode``
        # accel kernel; every backend raises the same errors at the
        # same points of failure.  A corrupt final zero run may
        # overshoot the declared length, which the kernel returns
        # as-is for the check below.
        out = accel.xmatch_decode(body, body_length, self._capacity)
        if len(out) != body_length:
            raise CorruptStreamError("X-MatchPRO length mismatch")
        return out + tail
