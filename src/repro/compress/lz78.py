"""LZ78 dictionary codec.

Emits ``(dictionary index, next byte)`` pairs while growing a phrase
dictionary; the index field width grows with the dictionary
(``ceil(log2(size + 1))`` bits), and the dictionary resets when it
reaches a bounded size — the behaviour of hardware LZ78 engines with a
fixed dictionary RAM.

Stream layout::

    [4-byte original length]
    bit stream of (index[var], byte[8]) pairs; a final pair may carry
    index-only (flagged by position == original length reached during
    decode, no explicit terminator needed).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.compress.base import Codec
from repro.compress.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError


def _index_width(dictionary_size: int) -> int:
    """Bits needed to name indices 0..dictionary_size (0 = empty prefix)."""
    width = 1
    while (1 << width) <= dictionary_size:
        width += 1
    return width


class Lz78Codec(Codec):
    """LZ78 with a bounded, resetting dictionary."""

    name = "LZ78"

    def __init__(self, max_entries: int = 1 << 10) -> None:
        if max_entries < 2:
            raise ValueError("dictionary needs at least 2 entries")
        self._max_entries = max_entries

    def compress(self, data: bytes) -> bytes:
        writer = BitWriter()
        dictionary: Dict[Tuple[int, int], int] = {}
        position = 0
        length = len(data)
        while position < length:
            index = 0  # empty phrase
            while position < length:
                key = (index, data[position])
                next_index = dictionary.get(key)
                if next_index is None:
                    break
                index = next_index
                position += 1
            writer.write_bits(index, _index_width(len(dictionary)))
            if position < length:
                writer.write_bits(data[position], 8)
                dictionary[(index, data[position])] = len(dictionary) + 1
                position += 1
                if len(dictionary) >= self._max_entries:
                    dictionary.clear()
            # else: the input ended exactly on a dictionary phrase; the
            # index-only token is the last one and carries no byte.
        return struct.pack(">I", length) + writer.getvalue()

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CorruptStreamError("LZ78 stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        reader = BitReader(data[4:])
        phrases: List[bytes] = [b""]
        out = bytearray()
        while len(out) < original_length:
            width = _index_width(len(phrases) - 1)
            index = reader.read_bits(width)
            if index >= len(phrases):
                raise CorruptStreamError(f"LZ78 index {index} out of range")
            phrase = phrases[index]
            if len(out) + len(phrase) >= original_length:
                out += phrase
                break
            byte = reader.read_bits(8)
            out += phrase + bytes([byte])
            phrases.append(phrase + bytes([byte]))
            if len(phrases) - 1 >= self._max_entries:
                phrases = [b""]
        if len(out) != original_length:
            raise CorruptStreamError(
                f"LZ78 output length {len(out)} != declared {original_length}"
            )
        return bytes(out)
