"""Adaptive arithmetic coding (the entropy stage of the 7-zip stand-in).

A classic Witten–Neal–Cleary integer arithmetic coder with 32-bit
precision.  Unlike a single-model coder, the encoder/decoder pair here
exposes *symbol-at-a-time* coding against caller-supplied adaptive
models, so a structured compressor (LZMA-style) can switch context
models per token role (literal vs offset vs length) while sharing one
arithmetic code stream — the architecture that lets the 7-zip stand-in
edge out the deflate pipeline in Table I.

Models are Fenwick (binary indexed) trees, so cumulative-frequency
queries and updates are O(log n).  Counts halve when a model's total
reaches ``_MAX_TOTAL``, keeping the model adaptive and the arithmetic
within precision bounds.
"""

from __future__ import annotations

from typing import List

from repro.errors import CorruptStreamError

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
_MAX_TOTAL = 1 << 16


class AdaptiveModel:
    """Adaptive frequency table over ``size`` symbols (Fenwick tree)."""

    __slots__ = ("_tree", "_size", "total", "_increment")

    def __init__(self, size: int, increment: int = 32) -> None:
        if size < 2:
            raise ValueError("model needs at least 2 symbols")
        self._size = size
        self._tree = [0] * (size + 1)
        self.total = 0
        self._increment = increment
        for symbol in range(size):
            self._add(symbol, 1)

    @property
    def size(self) -> int:
        return self._size

    def _add(self, symbol: int, delta: int) -> None:
        index = symbol + 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)
        self.total += delta

    def cumulative(self, symbol: int) -> int:
        """Sum of frequencies of symbols < symbol."""
        index = symbol
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def frequency(self, symbol: int) -> int:
        return self.cumulative(symbol + 1) - self.cumulative(symbol)

    def find(self, target: int) -> int:
        """The symbol whose [cumulative, cumulative+freq) spans target."""
        index = 0
        remaining = target
        mask = 1 << self._size.bit_length()
        while mask:
            probe = index + mask
            if probe <= self._size and self._tree[probe] <= remaining:
                index = probe
                remaining -= self._tree[probe]
            mask >>= 1
        return index

    def update(self, symbol: int) -> None:
        self._add(symbol, self._increment)
        if self.total >= _MAX_TOTAL:
            self._halve()

    def _halve(self) -> None:
        frequencies = [max(1, self.frequency(symbol) // 2)
                       for symbol in range(self._size)]
        self._tree = [0] * (self._size + 1)
        self.total = 0
        for symbol, frequency in enumerate(frequencies):
            self._add(symbol, frequency)


class ArithmeticEncoder:
    """Streaming arithmetic encoder; models are supplied per symbol."""

    def __init__(self) -> None:
        self._low = 0
        self._high = _TOP
        self._pending = 0
        self._out = bytearray()
        self._bit_buffer = 0
        self._bit_count = 0
        self._finished = False

    def encode(self, model: AdaptiveModel, symbol: int) -> None:
        if self._finished:
            raise CorruptStreamError("encoder already finished")
        if not 0 <= symbol < model.size:
            raise ValueError(f"symbol {symbol} outside model range")
        span = self._high - self._low + 1
        total = model.total
        cum_low = model.cumulative(symbol)
        cum_high = model.cumulative(symbol + 1)
        self._high = self._low + span * cum_high // total - 1
        self._low = self._low + span * cum_low // total
        self._renormalize()
        model.update(symbol)

    def _renormalize(self) -> None:
        while True:
            if self._high < _HALF:
                self._emit_with_pending(0)
            elif self._low >= _HALF:
                self._emit_with_pending(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                return
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def _emit(self, bit: int) -> None:
        self._bit_buffer = (self._bit_buffer << 1) | bit
        self._bit_count += 1
        if self._bit_count == 8:
            self._out.append(self._bit_buffer)
            self._bit_buffer = 0
            self._bit_count = 0

    def _emit_with_pending(self, bit: int) -> None:
        self._emit(bit)
        while self._pending:
            self._emit(bit ^ 1)
            self._pending -= 1

    def finish(self) -> bytes:
        """Flush the final interval and return the code stream."""
        if not self._finished:
            self._pending += 1
            if self._low < _QUARTER:
                self._emit_with_pending(0)
            else:
                self._emit_with_pending(1)
            while self._bit_count:
                self._emit(0)
            self._finished = True
        return bytes(self._out)


class ArithmeticDecoder:
    """Mirror of :class:`ArithmeticEncoder`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._bit_position = 0
        self._low = 0
        self._high = _TOP
        self._value = 0
        for _ in range(_CODE_BITS):
            self._value = (self._value << 1) | self._next_bit()

    def _next_bit(self) -> int:
        if self._bit_position >= len(self._data) * 8:
            return 0  # the encoder's implicit trailing zeros
        byte = self._data[self._bit_position >> 3]
        bit = (byte >> (7 - (self._bit_position & 7))) & 1
        self._bit_position += 1
        return bit

    def decode(self, model: AdaptiveModel) -> int:
        span = self._high - self._low + 1
        total = model.total
        target = ((self._value - self._low + 1) * total - 1) // span
        if target < 0 or target >= total:
            raise CorruptStreamError("arithmetic decoder out of range")
        symbol = model.find(target)
        cum_low = model.cumulative(symbol)
        cum_high = model.cumulative(symbol + 1)
        self._high = self._low + span * cum_high // total - 1
        self._low = self._low + span * cum_low // total
        self._renormalize()
        model.update(symbol)
        return symbol

    def _renormalize(self) -> None:
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                return
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._value = (self._value << 1) | self._next_bit()


class ByteModelBank:
    """Order-1 literal contexts, lazily allocated (256-symbol models)."""

    def __init__(self, size: int = 256) -> None:
        self._size = size
        self._contexts: List = [None] * 256

    def model_for(self, context: int) -> AdaptiveModel:
        model = self._contexts[context & 0xFF]
        if model is None:
            model = AdaptiveModel(self._size)
            self._contexts[context & 0xFF] = model
        return model
