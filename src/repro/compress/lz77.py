"""LZ77 (LZSS variant) with a hardware-sized sliding window.

Table I's "LZ77" row corresponds to the hardware-implementable
dictionary coders of the era: a small sliding window (256 bytes
default, an 8-bit offset — a shift-register window that fits FPGA
logic) and a 4-bit match length, with flag bits selecting literal vs.
(offset, length) tokens.

Stream layout::

    [4-byte original length]
    bit stream of tokens:
        1, offset[window_bits], length[length_bits]  -> copy
        0, literal[8]                                -> byte

Match search uses hash chains on 3-byte prefixes so compressing a
250 KB bitstream stays fast in pure Python.
"""

from __future__ import annotations

import struct

from repro import accel
from repro.compress.base import Codec
from repro.errors import CorruptStreamError


class Lz77Codec(Codec):
    """Sliding-window LZSS."""

    name = "LZ77"

    def __init__(self, window_bits: int = 8, length_bits: int = 4,
                 min_match: int = 3, max_chain: int = 8) -> None:
        if not 4 <= window_bits <= 16:
            raise ValueError("window_bits must be in [4, 16]")
        if not 2 <= length_bits <= 8:
            raise ValueError("length_bits must be in [2, 8]")
        self._window_bits = window_bits
        self._length_bits = length_bits
        self._window = 1 << window_bits
        self._min_match = min_match
        self._max_match = min_match + (1 << length_bits) - 1
        self._max_chain = max_chain

    def compress(self, data: bytes) -> bytes:
        # Hash-chain search, greedy tokenisation and bit packing all
        # run as accel kernels; the stream layout is unchanged.
        values, widths = accel.lz77_tokens(
            data, self._window_bits, self._length_bits,
            self._min_match, self._max_chain)
        return struct.pack(">I", len(data)) + accel.bitpack(values, widths)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CorruptStreamError("LZ77 stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        # Token decode (bit cursor, copy resolution against the
        # growing output) runs as the ``lz77_decode`` accel kernel;
        # every backend raises the same errors at the same points.
        return accel.lz77_decode(data[4:], original_length,
                                 self._window_bits, self._length_bits,
                                 self._min_match)
