"""LZ77 (LZSS variant) with a hardware-sized sliding window.

Table I's "LZ77" row corresponds to the hardware-implementable
dictionary coders of the era: a small sliding window (256 bytes
default, an 8-bit offset — a shift-register window that fits FPGA
logic) and a 4-bit match length, with flag bits selecting literal vs.
(offset, length) tokens.

Stream layout::

    [4-byte original length]
    bit stream of tokens:
        1, offset[window_bits], length[length_bits]  -> copy
        0, literal[8]                                -> byte

Match search uses hash chains on 3-byte prefixes so compressing a
250 KB bitstream stays fast in pure Python.
"""

from __future__ import annotations

import struct
from collections import defaultdict, deque
from typing import Deque, Dict

from repro import accel
from repro.compress.base import Codec
from repro.compress.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError


class Lz77Codec(Codec):
    """Sliding-window LZSS."""

    name = "LZ77"

    def __init__(self, window_bits: int = 8, length_bits: int = 4,
                 min_match: int = 3, max_chain: int = 8) -> None:
        if not 4 <= window_bits <= 16:
            raise ValueError("window_bits must be in [4, 16]")
        if not 2 <= length_bits <= 8:
            raise ValueError("length_bits must be in [2, 8]")
        self._window_bits = window_bits
        self._length_bits = length_bits
        self._window = 1 << window_bits
        self._min_match = min_match
        self._max_match = min_match + (1 << length_bits) - 1
        self._max_chain = max_chain

    def compress(self, data: bytes) -> bytes:
        writer = BitWriter()
        chains: Dict[bytes, Deque[int]] = defaultdict(
            lambda: deque(maxlen=self._max_chain))
        # One backend fetch and one aggregate metric per compress call;
        # the per-position search then calls the kernel directly.
        match_lengths = accel.active().match_lengths
        accel.record("match_lengths", len(data))
        position = 0
        length = len(data)
        while position < length:
            match_length, match_offset = self._find_match(
                data, position, chains, match_lengths)
            if match_length >= self._min_match:
                writer.write_bit(1)
                writer.write_bits(match_offset - 1, self._window_bits)
                writer.write_bits(match_length - self._min_match,
                                  self._length_bits)
                for covered in range(match_length):
                    self._index(data, position + covered, chains)
                position += match_length
            else:
                writer.write_bit(0)
                writer.write_bits(data[position], 8)
                self._index(data, position, chains)
                position += 1
        return struct.pack(">I", length) + writer.getvalue()

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CorruptStreamError("LZ77 stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        reader = BitReader(data[4:])
        out = bytearray()
        while len(out) < original_length:
            if reader.read_bit():
                offset = reader.read_bits(self._window_bits) + 1
                run = reader.read_bits(self._length_bits) + self._min_match
                start = len(out) - offset
                if start < 0:
                    raise CorruptStreamError(
                        f"LZ77 back-reference beyond start (offset {offset})"
                    )
                for step in range(run):
                    out.append(out[start + step])  # may self-overlap
            else:
                out.append(reader.read_bits(8))
        return bytes(out)

    def _find_match(self, data: bytes, position: int,
                    chains: Dict[bytes, Deque[int]], match_lengths):
        """Best (length, offset) for a match starting at ``position``."""
        if position + self._min_match > len(data):
            return 0, 0
        key = data[position:position + self._min_match]
        best_length = 0
        best_offset = 0
        window_start = position - self._window
        limit = min(self._max_match, len(data) - position)
        # Most-recent candidates first; the kernel stops measuring
        # after the first candidate reaching the limit, matching the
        # historical inline scan's early break.
        candidates = [candidate
                      for candidate in reversed(chains.get(key, ()))
                      if candidate >= window_start]
        if not candidates:
            return 0, 0
        for candidate, run in zip(
                candidates, match_lengths(data, candidates, position, limit)):
            if run > best_length:
                best_length = run
                best_offset = position - candidate
        return best_length, best_offset

    def _index(self, data: bytes, position: int,
               chains: Dict[bytes, Deque[int]]) -> None:
        if position + self._min_match <= len(data):
            chains[data[position:position + self._min_match]].append(position)
