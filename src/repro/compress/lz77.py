"""LZ77 (LZSS variant) with a hardware-sized sliding window.

Table I's "LZ77" row corresponds to the hardware-implementable
dictionary coders of the era: a small sliding window (256 bytes
default, an 8-bit offset — a shift-register window that fits FPGA
logic) and a 4-bit match length, with flag bits selecting literal vs.
(offset, length) tokens.

Stream layout::

    [4-byte original length]
    bit stream of tokens:
        1, offset[window_bits], length[length_bits]  -> copy
        0, literal[8]                                -> byte

Match search uses hash chains on 3-byte prefixes so compressing a
250 KB bitstream stays fast in pure Python.
"""

from __future__ import annotations

import struct

from repro import accel
from repro.compress.base import Codec
from repro.errors import CorruptStreamError


class Lz77Codec(Codec):
    """Sliding-window LZSS."""

    name = "LZ77"

    def __init__(self, window_bits: int = 8, length_bits: int = 4,
                 min_match: int = 3, max_chain: int = 8) -> None:
        if not 4 <= window_bits <= 16:
            raise ValueError("window_bits must be in [4, 16]")
        if not 2 <= length_bits <= 8:
            raise ValueError("length_bits must be in [2, 8]")
        self._window_bits = window_bits
        self._length_bits = length_bits
        self._window = 1 << window_bits
        self._min_match = min_match
        self._max_match = min_match + (1 << length_bits) - 1
        self._max_chain = max_chain

    def compress(self, data: bytes) -> bytes:
        # Hash-chain search, greedy tokenisation and bit packing all
        # run as accel kernels; the stream layout is unchanged.
        values, widths = accel.lz77_tokens(
            data, self._window_bits, self._length_bits,
            self._min_match, self._max_chain)
        return struct.pack(">I", len(data)) + accel.bitpack(values, widths)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CorruptStreamError("LZ77 stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        body = data[4:]
        window_bits = self._window_bits
        length_bits = self._length_bits
        window_mask = (1 << window_bits) - 1
        length_mask = (1 << length_bits) - 1
        min_match = self._min_match
        # Worst-case token: a match (1 + window + length bits) or a
        # literal (9 bits), whichever is wider.
        token_bits = max(1 + window_bits + length_bits, 9)
        out = bytearray()
        append = out.append
        # Inline bit cursor (see XMatchProCodec.decompress): one
        # refill per token, exhaustion checks per field exactly where
        # the historical per-field reads raised.
        acc = 0
        bits = 0
        position = 0
        body_len = len(body)
        while len(out) < original_length:
            if bits < token_bits:
                take = body_len - position
                if take > 6:
                    take = 6
                if take:
                    acc = ((acc & ((1 << bits) - 1)) << (take * 8)) \
                        | int.from_bytes(body[position:position + take],
                                         "big")
                    position += take
                    bits += take * 8
            if not bits:
                raise CorruptStreamError("bit stream exhausted")
            bits -= 1
            if (acc >> bits) & 1:  # match token
                if window_bits > bits:
                    raise CorruptStreamError("bit stream exhausted")
                bits -= window_bits
                offset = ((acc >> bits) & window_mask) + 1
                if length_bits > bits:
                    raise CorruptStreamError("bit stream exhausted")
                bits -= length_bits
                run = ((acc >> bits) & length_mask) + min_match
                start = len(out) - offset
                if start < 0:
                    raise CorruptStreamError(
                        f"LZ77 back-reference beyond start (offset {offset})"
                    )
                if offset >= run:
                    out += out[start:start + run]
                else:
                    for step in range(run):
                        append(out[start + step])  # self-overlapping
            else:
                if bits < 8:
                    raise CorruptStreamError("bit stream exhausted")
                bits -= 8
                append((acc >> bits) & 0xFF)
        return bytes(out)
