"""Canonical byte-level Huffman codec.

Configuration bitstreams have a heavily skewed byte histogram (zero
bytes dominate even inside used frames), which is why plain Huffman
scores a respectable 72.3 % in Table I.

Stream layout::

    [4-byte original length]
    [256 x 1 byte of code lengths (0 = absent symbol)]
    [bit-packed canonical codewords]

Canonical code assignment makes the table compact (lengths only) and
the decoder table-driven.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter
from typing import Dict, List, Tuple

from repro.compress.base import Codec
from repro.compress.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError

_MAX_CODE_LENGTH = 32


def _code_lengths(histogram: Counter) -> Dict[int, int]:
    """Huffman code lengths from a symbol histogram."""
    symbols = sorted(histogram)
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    # Heap of (weight, tiebreak, symbols-in-subtree).
    heap: List[Tuple[int, int, List[int]]] = []
    for order, symbol in enumerate(symbols):
        heap.append((histogram[symbol], order, [symbol]))
    heapq.heapify(heap)
    lengths: Dict[int, int] = {symbol: 0 for symbol in symbols}
    tiebreak = len(symbols)
    while len(heap) > 1:
        w1, _, s1 = heapq.heappop(heap)
        w2, _, s2 = heapq.heappop(heap)
        for symbol in s1 + s2:
            lengths[symbol] += 1
        heapq.heappush(heap, (w1 + w2, tiebreak, s1 + s2))
        tiebreak += 1
    return lengths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codewords: returns symbol -> (code, length)."""
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class HuffmanCodec(Codec):
    """Static canonical Huffman over bytes."""

    name = "Huffman"

    def compress(self, data: bytes) -> bytes:
        out = bytearray(struct.pack(">I", len(data)))
        if not data:
            return bytes(out) + bytes(256)
        lengths = _code_lengths(Counter(data))
        if max(lengths.values()) > _MAX_CODE_LENGTH:
            raise CorruptStreamError("code length overflow")  # unreachable
        table = bytearray(256)
        for symbol, length in lengths.items():
            table[symbol] = length
        out += table
        codes = _canonical_codes(lengths)
        writer = BitWriter()
        for byte in data:
            code, length = codes[byte]
            writer.write_bits(code, length)
        out += writer.getvalue()
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4 + 256:
            if len(data) >= 4:
                (declared,) = struct.unpack_from(">I", data, 0)
                if declared == 0 and len(data) >= 4:
                    return b""
            raise CorruptStreamError("Huffman stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        if original_length == 0:
            return b""
        lengths = {symbol: data[4 + symbol]
                   for symbol in range(256) if data[4 + symbol]}
        if not lengths:
            raise CorruptStreamError("empty Huffman table for non-empty data")
        codes = _canonical_codes(lengths)
        # Invert: (length, code) -> symbol.
        decode_map = {(length, code): symbol
                      for symbol, (code, length) in codes.items()}
        reader = BitReader(data[4 + 256:])
        out = bytearray()
        code = 0
        length = 0
        while len(out) < original_length:
            code = (code << 1) | reader.read_bit()
            length += 1
            if length > _MAX_CODE_LENGTH:
                raise CorruptStreamError("invalid Huffman codeword")
            symbol = decode_map.get((length, code))
            if symbol is not None:
                out.append(symbol)
                code = 0
                length = 0
        return bytes(out)
