"""Canonical byte-level Huffman codec.

Configuration bitstreams have a heavily skewed byte histogram (zero
bytes dominate even inside used frames), which is why plain Huffman
scores a respectable 72.3 % in Table I.

Stream layout::

    [4-byte original length]
    [256 x 1 byte of code lengths (0 = absent symbol)]
    [bit-packed canonical codewords]

Canonical code assignment makes the table compact (lengths only) and
the decoder table-driven.
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import Dict, Tuple

from repro import accel
from repro.compress.base import Codec
from repro.errors import CorruptStreamError

_MAX_CODE_LENGTH = 32
_PEEK_BITS = 12  # primary decode-table window


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codewords: returns symbol -> (code, length)."""
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class HuffmanCodec(Codec):
    """Static canonical Huffman over bytes."""

    name = "Huffman"

    def compress(self, data: bytes) -> bytes:
        out = bytearray(struct.pack(">I", len(data)))
        if not data:
            return bytes(out) + bytes(256)
        histogram = [0] * 256
        for symbol, count in Counter(data).items():
            histogram[symbol] = count
        codes, lengths = accel.huffman_code_table(histogram)
        if max(lengths) > _MAX_CODE_LENGTH:
            raise CorruptStreamError("code length overflow")  # unreachable
        out += bytes(lengths)
        out += accel.huffman_pack(data, codes, lengths)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4 + 256:
            if len(data) >= 4:
                (declared,) = struct.unpack_from(">I", data, 0)
                if declared == 0 and len(data) >= 4:
                    return b""
            raise CorruptStreamError("Huffman stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        if original_length == 0:
            return b""
        lengths = {symbol: data[4 + symbol]
                   for symbol in range(256) if data[4 + symbol]}
        if not lengths:
            raise CorruptStreamError("empty Huffman table for non-empty data")
        codes = _canonical_codes(lengths)
        # Primary table: the next ``peek`` bits (zero-padded near the
        # stream end — canonical codes are prefix-free, so a lookup
        # that lands on a code no longer than the real bits left is
        # unambiguous) index straight to ``(length << 8) | symbol``.
        # Codes longer than the window (rare: implies > 2^12 spread in
        # symbol frequencies) fall back to the historical bit-by-bit
        # walk over the (length, code) map.
        max_length = max(length for _, length in codes.values())
        peek = min(_PEEK_BITS, max_length)
        table = [0] * (1 << peek)
        for symbol, (code, length) in codes.items():
            if length <= peek:
                base = code << (peek - length)
                entry = (length << 8) | symbol
                for pad in range(1 << (peek - length)):
                    table[base + pad] = entry
        decode_map = {(length, code): symbol
                      for symbol, (code, length) in codes.items()}
        body = data[4 + 256:]
        out = bytearray()
        append = out.append
        acc = 0
        bits = 0
        position = 0
        body_len = len(body)
        while len(out) < original_length:
            if bits < peek:
                take = body_len - position
                if take > 6:
                    take = 6
                if take:
                    acc = ((acc & ((1 << bits) - 1)) << (take * 8)) \
                        | int.from_bytes(body[position:position + take],
                                         "big")
                    position += take
                    bits += take * 8
            if bits >= peek:
                entry = table[(acc >> (bits - peek)) & ((1 << peek) - 1)]
            else:
                entry = table[((acc & ((1 << bits) - 1))
                               << (peek - bits)) & ((1 << peek) - 1)]
            length = entry >> 8
            if entry and length <= bits:
                bits -= length
                append(entry & 0xFF)
                continue
            # Long code, or the stream ran dry mid-codeword: replay
            # the historical bit-by-bit walk for exact error parity.
            code = 0
            length = 0
            while True:
                if not bits:
                    if position < body_len:
                        acc = body[position]
                        position += 1
                        bits = 8
                    else:
                        raise CorruptStreamError("bit stream exhausted")
                bits -= 1
                code = (code << 1) | ((acc >> bits) & 1)
                length += 1
                if length > _MAX_CODE_LENGTH:
                    raise CorruptStreamError("invalid Huffman codeword")
                symbol = decode_map.get((length, code))
                if symbol is not None:
                    append(symbol)
                    break
        return bytes(out)
