"""Canonical byte-level Huffman codec.

Configuration bitstreams have a heavily skewed byte histogram (zero
bytes dominate even inside used frames), which is why plain Huffman
scores a respectable 72.3 % in Table I.

Stream layout::

    [4-byte original length]
    [256 x 1 byte of code lengths (0 = absent symbol)]
    [bit-packed canonical codewords]

Canonical code assignment makes the table compact (lengths only) and
the decoder table-driven.
"""

from __future__ import annotations

import struct
from collections import Counter

from repro import accel
from repro.compress.base import Codec
from repro.errors import CorruptStreamError

_MAX_CODE_LENGTH = 32


class HuffmanCodec(Codec):
    """Static canonical Huffman over bytes."""

    name = "Huffman"

    def compress(self, data: bytes) -> bytes:
        out = bytearray(struct.pack(">I", len(data)))
        if not data:
            return bytes(out) + bytes(256)
        histogram = [0] * 256
        for symbol, count in Counter(data).items():
            histogram[symbol] = count
        codes, lengths = accel.huffman_code_table(histogram)
        if max(lengths) > _MAX_CODE_LENGTH:
            raise CorruptStreamError("code length overflow")  # unreachable
        out += bytes(lengths)
        out += accel.huffman_pack(data, codes, lengths)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4 + 256:
            if len(data) >= 4:
                (declared,) = struct.unpack_from(">I", data, 0)
                if declared == 0 and len(data) >= 4:
                    return b""
            raise CorruptStreamError("Huffman stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        if original_length == 0:
            return b""
        table = data[4:4 + 256]
        if not any(table):
            raise CorruptStreamError("empty Huffman table for non-empty data")
        # Canonical code reassignment, the peek-table build and the
        # bit-serial decode loop all run as the ``huffman_decode``
        # accel kernel; every backend raises the same errors at the
        # same points of failure.
        return accel.huffman_decode(data[4 + 256:], original_length,
                                    table)
