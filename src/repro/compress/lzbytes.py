"""Byte-aligned LZ token stage shared by the Zip/7-zip stand-ins.

Produces a byte stream (not a bit stream) of LZ tokens so a second
entropy stage (Huffman for :class:`DeflateCodec`, adaptive arithmetic
coding for :class:`LzmaLikeCodec`) can squeeze the residual
redundancy — the same two-stage structure as real DEFLATE and LZMA.

Token format: a control byte carries 8 flags (MSB first); flag 0 means
one literal byte follows, flag 1 means a match follows encoded as
``offset_hi, offset_lo, length - min_match`` (3 bytes) for 16-bit
offsets, or 2 bytes when the window fits in 12 bits (offset high
nibble shares the length byte).
"""

from __future__ import annotations

import struct
from collections import defaultdict, deque
from typing import Deque, Dict, List

from repro import accel
from repro.errors import CorruptStreamError

MIN_MATCH = 4


class LzByteStage:
    """Greedy LZ parser with hash-chain match search."""

    def __init__(self, window: int = 1 << 16, max_match: int = MIN_MATCH + 255,
                 max_chain: int = 64) -> None:
        if window > 1 << 16:
            raise ValueError("window above 64 KB needs wider offsets")
        self._window = window
        self._max_match = max_match
        self._max_chain = max_chain

    def tokens(self, data: bytes):
        """Greedy token stream: ('lit', byte) and ('match', offset, len).

        This is the shared parse used both by the byte-aligned format
        below and by the LZMA-style structured entropy stage.
        """
        chains: Dict[bytes, Deque[int]] = defaultdict(
            lambda: deque(maxlen=self._max_chain))
        # Fetch the active backend's match kernel once; recording one
        # aggregate metric here keeps the per-position loop clean.
        match_lengths = accel.active().match_lengths
        accel.record("match_lengths", len(data))
        position = 0
        length = len(data)
        while position < length:
            match_length, match_offset = self._find_match(
                data, position, chains, match_lengths)
            if match_length >= MIN_MATCH:
                yield ("match", match_offset, match_length)
                for covered in range(match_length):
                    self._index(data, position + covered, chains)
                position += match_length
            else:
                yield ("lit", data[position])
                self._index(data, position, chains)
                position += 1

    def encode(self, data: bytes) -> bytes:
        out = bytearray(struct.pack(">I", len(data)))
        flags_position = -1
        flag_count = 8  # force a fresh control byte on first token
        flags_value = 0

        def start_flag_byte() -> None:
            nonlocal flags_position, flag_count, flags_value
            flags_position = len(out)
            out.append(0)
            flags_value = 0
            flag_count = 0

        def push_flag(bit: int) -> None:
            nonlocal flag_count, flags_value
            if flag_count == 8:
                start_flag_byte()
            flags_value = (flags_value << 1) | bit
            out[flags_position] = flags_value << (7 - flag_count)
            flag_count += 1

        for token in self.tokens(data):
            if token[0] == "match":
                _, match_offset, match_length = token
                push_flag(1)
                out.append((match_offset - 1) >> 8)
                out.append((match_offset - 1) & 0xFF)
                out.append(match_length - MIN_MATCH)
            else:
                push_flag(0)
                out.append(token[1])
        return bytes(out)

    def decode(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CorruptStreamError("LZ byte stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        position = 4
        out = bytearray()
        flags = 0
        flag_count = 0
        while len(out) < original_length:
            if flag_count == 0:
                if position >= len(data):
                    raise CorruptStreamError("missing control byte")
                flags = data[position]
                position += 1
                flag_count = 8
            flag = (flags >> 7) & 1
            flags = (flags << 1) & 0xFF
            flag_count -= 1
            if flag:
                if position + 3 > len(data):
                    raise CorruptStreamError("truncated match token")
                offset = ((data[position] << 8) | data[position + 1]) + 1
                run = data[position + 2] + MIN_MATCH
                position += 3
                start = len(out) - offset
                if start < 0:
                    raise CorruptStreamError("back-reference before start")
                for step in range(run):
                    out.append(out[start + step])
            else:
                if position >= len(data):
                    raise CorruptStreamError("truncated literal token")
                out.append(data[position])
                position += 1
        return bytes(out)

    def _find_match(self, data: bytes, position: int,
                    chains: Dict[bytes, Deque[int]], match_lengths):
        if position + MIN_MATCH > len(data):
            return 0, 0
        key = data[position:position + MIN_MATCH]
        best_length = 0
        best_offset = 0
        window_start = position - self._window
        limit = min(self._max_match, len(data) - position)
        # Most-recent candidates first; the kernel measures each one
        # and stops after the first that reaches the limit, exactly
        # like the historical inline scan.
        candidates = [candidate
                      for candidate in reversed(chains.get(key, ()))
                      if candidate >= window_start]
        if not candidates:
            return 0, 0
        for candidate, run in zip(
                candidates, match_lengths(data, candidates, position, limit)):
            if run > best_length:
                best_length = run
                best_offset = position - candidate
        return best_length, best_offset

    def _index(self, data: bytes, position: int,
               chains: Dict[bytes, Deque[int]]) -> None:
        if position + MIN_MATCH <= len(data):
            chains[data[position:position + MIN_MATCH]].append(position)
