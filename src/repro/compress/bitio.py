"""Bit-level I/O used by the entropy and dictionary coders.

MSB-first bit order (the order hardware shift registers and the
canonical-Huffman convention use).  The writer pads the final byte with
zero bits; codecs that need exact termination encode an explicit
end-of-stream symbol or a length header.
"""

from __future__ import annotations

from repro import accel
from repro.errors import CorruptStreamError


class BitWriter:
    """Accumulates bits MSB-first into a bytearray."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._bit_count += 1
        if self._bit_count == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < 64 and value >= (1 << width) and width > 0):
            raise ValueError(f"value {value} does not fit in {width} bits")
        # Bulk path: fold the whole value into the accumulator and
        # flush complete bytes, instead of shifting one bit at a time.
        accumulator = (self._accumulator << width) | value
        count = self._bit_count + width
        buffer = self._buffer
        while count >= 8:
            count -= 8
            buffer.append((accumulator >> count) & 0xFF)
        self._accumulator = accumulator & ((1 << count) - 1)
        self._bit_count = count

    def write_unary(self, value: int) -> None:
        """``value`` one-bits then a terminating zero."""
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_bytes(self, data: bytes) -> None:
        if self._bit_count == 0:
            self._buffer.extend(data)
            return
        for byte in data:
            self.write_bits(byte, 8)

    def write_tokens(self, values, widths) -> None:
        """Write a whole ``(values, widths)`` token stream at once.

        Accepts the typed-array pairs the accel token kernels return
        (or any parallel sequences) and folds them through a single
        bulk :meth:`write_bits` call instead of one call per token.
        """
        total = sum(widths)
        if not total:
            return
        packed = accel.bitpack(values, widths)
        value = int.from_bytes(packed, "big") >> (len(packed) * 8 - total)
        self.write_bits(value, total)

    @property
    def bit_length(self) -> int:
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """Finish the stream (zero-pad the last byte) and return it."""
        if self._bit_count:
            tail = self._accumulator << (8 - self._bit_count)
            return bytes(self._buffer) + bytes([tail])
        return bytes(self._buffer)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit offset

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._position

    def read_bit(self) -> int:
        if self._position >= len(self._data) * 8:
            raise CorruptStreamError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return 0
        position = self._position
        end = position + width
        data = self._data
        if end > len(data) * 8:
            raise CorruptStreamError("bit stream exhausted")
        # Bulk path: pull every byte the span touches in one
        # int.from_bytes, then shift/mask — no per-bit loop.
        first = position >> 3
        last = (end - 1) >> 3
        chunk = int.from_bytes(data[first:last + 1], "big")
        shift = ((last + 1) << 3) - end
        self._position = end
        return (chunk >> shift) & ((1 << width) - 1)

    def read_unary(self, limit: int = 1 << 20) -> int:
        """Count one-bits until the terminating zero."""
        count = 0
        while self.read_bit():
            count += 1
            if count > limit:
                raise CorruptStreamError("runaway unary code")
        return count

    def read_bytes(self, count: int) -> bytes:
        position = self._position
        if position & 7 == 0:  # byte-aligned: slice directly
            start = position >> 3
            if start + count > len(self._data):
                raise CorruptStreamError("bit stream exhausted")
            self._position = position + (count << 3)
            return bytes(self._data[start:start + count])
        # Unaligned: one bulk bit read instead of a per-byte loop.
        return self.read_bits(count << 3).to_bytes(count, "big")
