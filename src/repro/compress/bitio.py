"""Bit-level I/O used by the entropy and dictionary coders.

MSB-first bit order (the order hardware shift registers and the
canonical-Huffman convention use).  The writer pads the final byte with
zero bits; codecs that need exact termination encode an explicit
end-of-stream symbol or a length header.
"""

from __future__ import annotations

from repro.errors import CorruptStreamError


class BitWriter:
    """Accumulates bits MSB-first into a bytearray."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._bit_count += 1
        if self._bit_count == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < 64 and value >= (1 << width) and width > 0):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """``value`` one-bits then a terminating zero."""
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write_bits(byte, 8)

    @property
    def bit_length(self) -> int:
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """Finish the stream (zero-pad the last byte) and return it."""
        if self._bit_count:
            tail = self._accumulator << (8 - self._bit_count)
            return bytes(self._buffer) + bytes([tail])
        return bytes(self._buffer)


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit offset

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._position

    def read_bit(self) -> int:
        if self._position >= len(self._data) * 8:
            raise CorruptStreamError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self, limit: int = 1 << 20) -> int:
        """Count one-bits until the terminating zero."""
        count = 0
        while self.read_bit():
            count += 1
            if count > limit:
                raise CorruptStreamError("runaway unary code")
        return count

    def read_bytes(self, count: int) -> bytes:
        return bytes(self.read_bits(8) for _ in range(count))
