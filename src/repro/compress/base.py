"""Codec interface and compression metrics.

The paper reports "compression ratio" as the *space saved*:
a ratio of 74.2 % means the compressed stream is 25.8 % of the
original ("about four times smaller").  :func:`compression_ratio`
implements that convention; it is the number compared against Table I.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import CompressionError


def compression_ratio(original_size: int, compressed_size: int) -> float:
    """Space saved as a percentage (the paper's Table I convention)."""
    if original_size <= 0:
        raise CompressionError("original size must be positive")
    return (1.0 - compressed_size / original_size) * 100.0


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one payload."""

    codec_name: str
    original_size: int
    compressed_size: int

    @property
    def ratio_percent(self) -> float:
        return compression_ratio(self.original_size, self.compressed_size)

    @property
    def factor(self) -> float:
        """How many times smaller the compressed stream is."""
        if self.compressed_size == 0:
            raise CompressionError("empty compressed stream")
        return self.original_size / self.compressed_size


class Codec(abc.ABC):
    """A lossless compressor/decompressor pair.

    Subclasses guarantee ``decompress(compress(data)) == data`` for any
    ``bytes`` input (the property tests in ``tests/compress`` enforce
    this with hypothesis).
    """

    #: Table I row name; subclasses override.
    name: str = "codec"

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; never raises for valid byte input."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`.

        Raises :class:`~repro.errors.CorruptStreamError` on malformed
        input rather than returning wrong bytes silently.
        """

    def measure(self, data: bytes) -> CompressionResult:
        """Compress and report sizes/ratio (used by the Table I bench)."""
        compressed = self.compress(data)
        return CompressionResult(
            codec_name=self.name,
            original_size=len(data),
            compressed_size=len(compressed),
        )

    def roundtrip(self, data: bytes) -> bool:
        """Convenience correctness check."""
        return self.decompress(self.compress(data)) == data

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
