"""Deflate-style codec — the Table I "Zip" row.

Real Zip/DEFLATE is LZ77 over a 32 KB window followed by Huffman
coding of the token stream.  This codec has exactly that structure:
the byte-aligned LZ stage from :mod:`repro.compress.lzbytes` (32 KB
window, 258-byte max match, greedy parse with hash chains) followed by
the canonical Huffman coder from :mod:`repro.compress.huffman`.

It is not bit-compatible with RFC 1951 (no dynamic per-block trees),
but its compression behaviour on configuration bitstreams sits where
Zip sits in Table I: clearly above the single-stage codecs.
"""

from __future__ import annotations

from repro.compress.base import Codec
from repro.compress.huffman import HuffmanCodec
from repro.compress.lzbytes import LzByteStage


class DeflateCodec(Codec):
    """LZ77 (32 KB window) + canonical Huffman pipeline."""

    name = "Zip"

    def __init__(self, window: int = 1 << 15, max_chain: int = 64) -> None:
        self._lz = LzByteStage(window=window, max_chain=max_chain)
        self._entropy = HuffmanCodec()

    def compress(self, data: bytes) -> bytes:
        return self._entropy.compress(self._lz.encode(data))

    def decompress(self, data: bytes) -> bytes:
        return self._lz.decode(self._entropy.decompress(data))
