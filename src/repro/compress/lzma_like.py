"""LZMA-style codec — the Table I "7-zip" row.

7-zip's LZMA is a large-window LZ77 whose token fields are coded by an
adaptive range coder with *structured context models*: the literal
stream, match offsets and match lengths each get their own adaptive
probability models rather than sharing one histogram.  This codec has
exactly that architecture:

* the greedy hash-chain LZ parse from :mod:`repro.compress.lzbytes`
  over the full 64 KB offset space;
* one shared arithmetic code stream (:mod:`repro.compress.arith` — an
  arithmetic coder and a range coder are equivalent entropy stages)
  with separate adaptive models for the token kind, order-1 literal
  contexts, offset high/low bytes and match length.

It is not format-compatible with the real tool, but the structure is
what gives 7-zip its small edge over Zip in Table I (81.9 % vs
81.2 %): the same LZ redundancy, better-modelled residual.

Stream layout: ``[4-byte original length][arithmetic code stream]``;
an explicit end-of-stream token terminates decoding and the length
header cross-checks it.
"""

from __future__ import annotations

import struct

from repro.compress.arith import (
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
    ByteModelBank,
)
from repro.compress.base import Codec
from repro.compress.lzbytes import LzByteStage, MIN_MATCH
from repro.errors import CorruptStreamError

_KIND_LITERAL = 0
_KIND_MATCH = 1
_KIND_EOF = 2


class _TokenModels:
    """The adaptive model set shared by encoder and decoder."""

    def __init__(self) -> None:
        self.kind = AdaptiveModel(3)
        self.literals = ByteModelBank()
        self.offset_high = AdaptiveModel(256)
        self.offset_low = AdaptiveModel(256)
        self.length = AdaptiveModel(256)


class LzmaLikeCodec(Codec):
    """Large-window LZ + structured adaptive arithmetic coding."""

    name = "7-zip"

    def __init__(self, window: int = 1 << 16,
                 max_match: int = MIN_MATCH + 255,
                 max_chain: int = 128) -> None:
        self._lz = LzByteStage(window=window, max_match=max_match,
                               max_chain=max_chain)

    def compress(self, data: bytes) -> bytes:
        models = _TokenModels()
        encoder = ArithmeticEncoder()
        previous_byte = 0
        for token in self._lz.tokens(data):
            if token[0] == "lit":
                byte = token[1]
                encoder.encode(models.kind, _KIND_LITERAL)
                encoder.encode(models.literals.model_for(previous_byte), byte)
                previous_byte = byte
            else:
                _, offset, length = token
                encoder.encode(models.kind, _KIND_MATCH)
                encoder.encode(models.offset_high, (offset - 1) >> 8)
                encoder.encode(models.offset_low, (offset - 1) & 0xFF)
                encoder.encode(models.length, length - MIN_MATCH)
                previous_byte = 0  # context resets after a copy
        encoder.encode(models.kind, _KIND_EOF)
        return struct.pack(">I", len(data)) + encoder.finish()

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CorruptStreamError("LZMA-like stream truncated")
        (original_length,) = struct.unpack_from(">I", data, 0)
        models = _TokenModels()
        decoder = ArithmeticDecoder(data[4:])
        out = bytearray()
        previous_byte = 0
        while True:
            kind = decoder.decode(models.kind)
            if kind == _KIND_EOF:
                break
            if kind == _KIND_LITERAL:
                byte = decoder.decode(models.literals.model_for(previous_byte))
                out.append(byte)
                previous_byte = byte
            else:
                offset = ((decoder.decode(models.offset_high) << 8)
                          | decoder.decode(models.offset_low)) + 1
                run = decoder.decode(models.length) + MIN_MATCH
                start = len(out) - offset
                if start < 0:
                    raise CorruptStreamError("back-reference before start")
                for step in range(run):
                    out.append(out[start + step])
                previous_byte = 0
            if len(out) > original_length:
                raise CorruptStreamError("LZMA-like stream overran length")
        if len(out) != original_length:
            raise CorruptStreamError(
                f"LZMA-like output length {len(out)} != declared "
                f"{original_length}"
            )
        return bytes(out)
