"""Run-length encoding.

This is the algorithm class FaRM uses for its bitstream compression
(the paper's related-work section notes RLE "does not provide an
important gain" — Table I puts it last at 63 %).

The format is word-oriented, matching how a hardware RLE for
configuration data works (FaRM compresses 32-bit words): the stream is
a sequence of records, each

* control byte ``0x00..0x7F`` → ``n+1`` literal 32-bit words follow;
* control byte ``0x80..0xFF`` → the next 32-bit word repeats
  ``(control - 0x80) + 2`` times, with a following extension byte
  scheme for longer runs (each extension byte adds up to 255 more
  repeats, terminated by a byte < 255).

A trailing length header carries the original byte count so inputs
that are not word-aligned round-trip exactly (the ragged tail is
stored raw).
"""

from __future__ import annotations

import struct

from repro import accel
from repro.compress.base import Codec
from repro.errors import CorruptStreamError

_MAX_LITERALS = 0x80          # 128 words per literal record
_MIN_RUN = 2
_MAX_BASE_RUN = 0x7F + _MIN_RUN  # control byte encodes runs of 2..129


class RleCodec(Codec):
    """Word-oriented run-length codec."""

    name = "RLE"

    def compress(self, data: bytes) -> bytes:
        word_count = len(data) // 4
        tail = data[word_count * 4:]

        out = bytearray(struct.pack(">I", len(data)))
        out.append(len(tail))
        out += tail
        # Run scan and record emission both run in the accel kernel;
        # the record format (see the module docstring) is unchanged.
        out += accel.rle_records(data, word_count)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 5:
            raise CorruptStreamError("RLE stream shorter than its header")
        (original_length,) = struct.unpack_from(">I", data, 0)
        tail_length = data[4]
        if tail_length > 3:
            raise CorruptStreamError(f"invalid tail length {tail_length}")
        position = 5
        tail = data[position:position + tail_length]
        if len(tail) != tail_length:
            raise CorruptStreamError("truncated tail")
        position += tail_length

        # Decode until the declared body length is reached; anything
        # after that is container padding (e.g. the Manager word-aligns
        # compressed payloads in BRAM) and must be ignored.  The record
        # walk is the ``rle_decode`` accel kernel; every backend raises
        # the same truncation errors at the same points.
        body_length = original_length - tail_length
        out = accel.rle_decode(data[position:], body_length) + tail
        if len(out) != original_length:
            raise CorruptStreamError(
                f"RLE output length {len(out)} != declared {original_length}"
            )
        return bytes(out)
