"""Lossless bitstream-compression codecs (Table I substrate).

Every algorithm the paper compares is implemented from scratch and
round-trip verified:

* :class:`RleCodec`        — run-length encoding (FaRM's scheme class).
* :class:`Lz77Codec`       — sliding-window LZSS with a hardware-sized window.
* :class:`Lz78Codec`       — dictionary-building LZ78.
* :class:`HuffmanCodec`    — canonical byte Huffman.
* :class:`XMatchProCodec`  — the word-tuple CAM-dictionary scheme UPaRC
  implements in hardware (Nunez & Jones, TVLSI 2003).
* :class:`DeflateCodec`    — LZ77 + Huffman pipeline (the "Zip" row).
* :class:`LzmaLikeCodec`   — large-window LZ + adaptive range coder
  (the "7-zip" row).

The registry maps the paper's Table I row names to codec classes and
records the paper's reference ratios for comparison harnesses.
"""

from repro.compress.base import Codec, CompressionResult, compression_ratio
from repro.compress.rle import RleCodec
from repro.compress.lz77 import Lz77Codec
from repro.compress.lz78 import Lz78Codec
from repro.compress.huffman import HuffmanCodec
from repro.compress.xmatchpro import XMatchProCodec
from repro.compress.deflate import DeflateCodec
from repro.compress.lzma_like import LzmaLikeCodec
from repro.compress.registry import (
    PAPER_TABLE1_RATIOS,
    codec_by_name,
    all_codecs,
)

__all__ = [
    "Codec",
    "CompressionResult",
    "compression_ratio",
    "RleCodec",
    "Lz77Codec",
    "Lz78Codec",
    "HuffmanCodec",
    "XMatchProCodec",
    "DeflateCodec",
    "LzmaLikeCodec",
    "PAPER_TABLE1_RATIOS",
    "codec_by_name",
    "all_codecs",
]
