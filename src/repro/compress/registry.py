"""Codec registry and the paper's Table I reference column.

``PAPER_TABLE1_RATIOS`` holds the compression ratios (space saved, %)
the paper reports for high-utilization partial bitstreams; the Table I
bench compares these against the ratios our codecs achieve on the
synthetic bitstream corpus.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.compress.base import Codec
from repro.compress.deflate import DeflateCodec
from repro.compress.huffman import HuffmanCodec
from repro.compress.lz77 import Lz77Codec
from repro.compress.lz78 import Lz78Codec
from repro.compress.lzma_like import LzmaLikeCodec
from repro.compress.rle import RleCodec
from repro.compress.xmatchpro import XMatchProCodec

# Table I of the paper, in the paper's row order (worst to best).
PAPER_TABLE1_RATIOS: Dict[str, float] = {
    "RLE": 63.0,
    "LZ77": 71.4,
    "Huffman": 72.3,
    "X-MatchPRO": 74.2,
    "LZ78": 75.6,
    "Zip": 81.2,
    "7-zip": 81.9,
}

_FACTORIES: Dict[str, Callable[[], Codec]] = {
    "RLE": RleCodec,
    "LZ77": Lz77Codec,
    "Huffman": HuffmanCodec,
    "X-MatchPRO": XMatchProCodec,
    "LZ78": Lz78Codec,
    "Zip": DeflateCodec,
    "7-zip": LzmaLikeCodec,
}


def codec_by_name(name: str) -> Codec:
    """Instantiate the codec for a Table I row name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        known = ", ".join(_FACTORIES)
        raise KeyError(f"unknown codec {name!r}; known: {known}") from None


def all_codecs() -> List[Codec]:
    """One instance of every Table I codec, in the paper's row order."""
    return [factory() for factory in _FACTORIES.values()]
