""".bit file I/O: persist and reload partial bitstreams.

Round-trips the same on-disk format the BIT preamble describes, so
generated bitstreams can be stored in a repository's asset directory,
shipped to a board-deployment flow, or exchanged with external tools
that read standard ``.bit`` files (the raw section is a valid
type-1/type-2 packet stream).

``load_bit`` returns a :class:`LoadedBitstream` exposing the same
surface the simulator consumes (``raw_words`` / ``raw_bytes`` /
``file_bytes`` / ``size``), so everything that accepts a generated
:class:`~repro.bitstream.generator.PartialBitstream` also accepts a
loaded one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.bitstream.device import DeviceInfo
from repro.bitstream.format import (
    ConfigRegister,
    Opcode,
    words_to_bytes,
)
from repro.bitstream.generator import PartialBitstream
from repro.bitstream.header import BitstreamHeader
from repro.bitstream.parser import BitstreamParser
from repro.errors import BitstreamError
from repro.units import DataSize

PathLike = Union[str, "os.PathLike[str]"]


@dataclass
class LoadedBitstream:
    """A bitstream reconstructed from a .bit file."""

    header: BitstreamHeader
    raw_words: List[int]
    frame_count: int
    frame_payload_offset: int
    frame_payload_words: int
    #: Serialized FDRI payload sliced straight from the file blob
    #: (always equal to packing the payload span of ``raw_words``);
    #: ``None`` means derive on demand.
    payload_data: Optional[bytes] = None

    @property
    def raw_bytes(self) -> bytes:
        return words_to_bytes(self.raw_words)

    @property
    def file_bytes(self) -> bytes:
        return self.header.encode() + self.raw_bytes

    @property
    def size(self) -> DataSize:
        return DataSize(len(self.raw_bytes))

    @property
    def frame_payload(self) -> bytes:
        if self.payload_data is not None:
            return self.payload_data
        start = self.frame_payload_offset
        stop = start + self.frame_payload_words
        return words_to_bytes(self.raw_words[start:stop])


def save_bit(bitstream, path: PathLike) -> int:
    """Write a bitstream (generated or loaded) as a .bit file.

    Returns the byte count written.
    """
    blob = bitstream.file_bytes
    with open(path, "wb") as handle:
        handle.write(blob)
    return len(blob)


def load_bit(path: PathLike,
             device: Optional[DeviceInfo] = None) -> LoadedBitstream:
    """Read and validate a .bit file.

    ``device`` enables the IDCODE/part-name check (recommended when
    the target device is known).
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    parsed = BitstreamParser(device).parse(blob)

    # Locate the FDRI payload (the frame data) inside the word stream
    # so the loaded object exposes the same views a generated one does.
    frame_words_per_frame = (device.frame_words if device is not None
                             else 41)
    payload_offset, payload_words = _find_fdri_span(parsed.raw_words)
    if payload_words % frame_words_per_frame:
        raise BitstreamError(
            f"FDRI payload of {payload_words} words is not a whole "
            f"number of {frame_words_per_frame}-word frames"
        )
    # The raw word stream is the tail of the file blob (the parser
    # decodes it from there), so the FDRI payload bytes can be sliced
    # out directly instead of re-packed from the word list later.
    raw_start = len(blob) - 4 * len(parsed.raw_words)
    start = raw_start + payload_offset * 4
    return LoadedBitstream(
        header=parsed.header,
        raw_words=parsed.raw_words,
        frame_count=payload_words // frame_words_per_frame,
        frame_payload_offset=payload_offset,
        frame_payload_words=payload_words,
        payload_data=blob[start:start + payload_words * 4],
    )


def _find_fdri_span(words: List[int]) -> tuple:
    """(word offset, word count) of the first FDRI write payload."""
    index = 0
    while index < len(words):
        word = words[index]
        packet_type = word >> 29
        if packet_type == 0b001:
            register = (word >> 13) & 0x3FFF
            opcode = (word >> 27) & 0b11
            count = word & 0x7FF
            if (register == int(ConfigRegister.FDRI)
                    and opcode == int(Opcode.WRITE)):
                if count > 0:
                    return index + 1, count
                # type-2 continuation follows
                if index + 1 < len(words) \
                        and words[index + 1] >> 29 == 0b010:
                    count2 = words[index + 1] & ((1 << 27) - 1)
                    return index + 2, count2
            index += 1 + count
        else:
            index += 1
    raise BitstreamError("no FDRI write found in bitstream")


def roundtrip_equal(first: PartialBitstream,
                    second: LoadedBitstream) -> bool:
    """Bit-exact comparison helper used by tests."""
    return first.file_bytes == second.file_bytes
