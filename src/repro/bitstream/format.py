"""Configuration packet format (type-1 / type-2) and register map.

The raw bitstream after the BIT header is a sequence of 32-bit words:
dummy padding, a bus-width auto-detect pattern, the sync word
``0xAA995566``, then configuration packets.  A type-1 packet addresses
one of the configuration registers and carries up to 2047 payload
words; a type-2 packet extends the previous type-1 with a 27-bit word
count, which is how multi-frame FDRI payloads are expressed.

This module provides word-level encode/decode used by both the
generator and the parser, and by tests that assert the generator's
output is structurally valid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence

from repro import accel
from repro.errors import BitstreamFormatError

SYNC_WORD = 0xAA995566
DUMMY_WORD = 0xFFFFFFFF
BUS_WIDTH_SYNC = 0x000000BB
BUS_WIDTH_DETECT = 0x11220044
NOOP_WORD = 0x20000000  # type-1 NOP with zero payload

_TYPE1_MAX_WORDS = (1 << 11) - 1
_TYPE2_MAX_WORDS = (1 << 27) - 1


class Opcode(enum.IntEnum):
    NOP = 0
    READ = 1
    WRITE = 2


class ConfigRegister(enum.IntEnum):
    """Virtex-5 configuration register addresses (UG191 table 6-5)."""

    CRC = 0
    FAR = 1
    FDRI = 2
    FDRO = 3
    CMD = 4
    CTL0 = 5
    MASK = 6
    STAT = 7
    LOUT = 8
    COR0 = 9
    MFWR = 10
    CBC = 11
    IDCODE = 12
    AXSS = 13
    COR1 = 14
    WBSTAR = 16
    TIMER = 17


class Command(enum.IntEnum):
    """CMD register command codes (UG191 table 6-6)."""

    NULL = 0
    WCFG = 1
    MFW = 2
    LFRM = 3
    RCFG = 4
    START = 5
    RCAP = 6
    RCRC = 7
    AGHIGH = 8
    SWITCH = 9
    GRESTORE = 10
    SHUTDOWN = 11
    GCAPTURE = 12
    DESYNC = 13
    IPROG = 15


@dataclass
class ConfigPacket:
    """A decoded configuration packet (header + payload words)."""

    opcode: Opcode
    register: ConfigRegister
    payload: List[int] = field(default_factory=list)
    type2: bool = False

    def encode(self) -> List[int]:
        """Encode to header word(s) + payload words."""
        for word in self.payload:
            if not 0 <= word < (1 << 32):
                raise BitstreamFormatError(f"payload word {word:#x} not 32-bit")
        count = len(self.payload)
        if self.type2:
            if count > _TYPE2_MAX_WORDS:
                raise BitstreamFormatError("type-2 payload too large")
            # A type-2 packet must follow a type-1 naming the register;
            # encode() emits the leading type-1 with zero payload.
            head1 = _type1_header(self.opcode, self.register, 0)
            head2 = (0b010 << 29) | (int(self.opcode) << 27) | count
            return [head1, head2, *self.payload]
        if count > _TYPE1_MAX_WORDS:
            raise BitstreamFormatError(
                f"type-1 payload of {count} words exceeds "
                f"{_TYPE1_MAX_WORDS}; use type2=True"
            )
        return [_type1_header(self.opcode, self.register, count),
                *self.payload]


def _type1_header(opcode: Opcode, register: ConfigRegister,
                  count: int) -> int:
    return (
        (0b001 << 29)
        | (int(opcode) << 27)
        | (int(register) << 13)
        | count
    )


def type2_write_headers(register: ConfigRegister, count: int,
                        opcode: Opcode = Opcode.WRITE) -> List[int]:
    """Header words of a type-1 + type-2 write, without its payload.

    Lets the generator splice an already-serialized payload between
    the headers and the epilogue instead of materialising the payload
    as a word list just to encode the packet around it.
    """
    if not 0 <= count <= _TYPE2_MAX_WORDS:
        raise BitstreamFormatError("type-2 payload too large")
    return [_type1_header(opcode, register, 0),
            (0b010 << 29) | (int(opcode) << 27) | count]


def write_packet(register: ConfigRegister,
                 payload: Sequence[int]) -> ConfigPacket:
    """Convenience for the common type-1 register write."""
    return ConfigPacket(Opcode.WRITE, register, list(payload))


def command_packet(command: Command) -> ConfigPacket:
    return write_packet(ConfigRegister.CMD, [int(command)])


def noop_packets(count: int) -> List[ConfigPacket]:
    return [ConfigPacket(Opcode.NOP, ConfigRegister.CRC) for _ in range(count)]


class PacketDecoder:
    """Stream decoder for the word sequence after the sync word."""

    def __init__(self, words: Sequence[int]) -> None:
        self._words = list(words)
        self._index = 0

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._words)

    def decode_all(self) -> List[ConfigPacket]:
        packets = []
        while not self.exhausted:
            packets.append(self.decode_one())
        return packets

    def decode_one(self) -> ConfigPacket:
        header = self._take("packet header")
        ptype = header >> 29
        opcode = Opcode((header >> 27) & 0b11)
        if ptype == 0b001:
            register = self._register_of(header)
            count = header & _TYPE1_MAX_WORDS
            payload = [self._take("type-1 payload") for _ in range(count)]
            # Merge an immediately following type-2 continuation.
            if not self.exhausted and (self._peek() >> 29) == 0b010:
                head2 = self._take("type-2 header")
                count2 = head2 & _TYPE2_MAX_WORDS
                payload2 = [self._take("type-2 payload") for _ in range(count2)]
                return ConfigPacket(opcode, register, payload + payload2,
                                    type2=True)
            return ConfigPacket(opcode, register, payload)
        if ptype == 0b010:
            raise BitstreamFormatError(
                "orphan type-2 packet (no preceding type-1)"
            )
        raise BitstreamFormatError(f"unknown packet type {ptype:#05b}")

    def _register_of(self, header: int) -> ConfigRegister:
        address = (header >> 13) & 0x3FFF
        try:
            return ConfigRegister(address)
        except ValueError:
            raise BitstreamFormatError(
                f"unknown configuration register address {address}"
            ) from None

    def _take(self, what: str) -> int:
        if self.exhausted:
            raise BitstreamFormatError(f"truncated stream while reading {what}")
        word = self._words[self._index]
        self._index += 1
        return word

    def _peek(self) -> int:
        return self._words[self._index]


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Big-endian word serialization (configuration byte order).

    Dispatches to the active :mod:`repro.accel` backend; raises
    :class:`OverflowError` for words outside 32 bits regardless of
    backend.
    """
    return accel.words_to_bytes(words)


def bytes_to_words(data: bytes) -> List[int]:
    """Inverse of :func:`words_to_bytes` (word-aligned input only)."""
    return accel.bytes_to_words(data)
