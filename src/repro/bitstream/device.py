"""FPGA device descriptions.

Each :class:`DeviceInfo` carries the configuration-architecture
parameters the simulator needs: frame geometry (words per frame differ
between families), IDCODE for bitstream validation, the full-device
bitstream size (the paper quotes 2444 KB for the XC5VSX50T), and the
frequency envelopes of the hardwired blocks (ICAP, BRAM) that bound the
achievable reconfiguration bandwidth.

The 362.5 MHz ICAP figure is *overclocked* relative to the datasheet
(100 MHz nominal); the paper demonstrates it holds on Virtex-5 under
default core voltage at 20 C but is marginal on Virtex-6.  The device
records both the datasheet limit and the demonstrated limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import BYTES_PER_KB, DataSize, Frequency


@dataclass(frozen=True)
class DeviceInfo:
    """Static description of one FPGA device."""

    name: str
    family: str
    idcode: int
    frame_words: int            # 32-bit words per configuration frame
    rows: int                   # clock-region rows (top+bottom combined)
    columns: int                # CLB-column count (simplified geometry)
    minor_frames_clb: int       # frames per CLB column
    full_bitstream: DataSize    # full-device configuration size
    process_nm: int             # 65 nm (V5) vs 40 nm (V6) — power model input
    icap_width_bits: int        # ICAP data-path width
    icap_fmax_nominal: Frequency      # datasheet ICAP frequency
    icap_fmax_demonstrated: Frequency # what the paper achieved
    bram_fmax: Frequency        # guaranteed block-RAM frequency
    core_voltage: float         # V

    @property
    def frame_bytes(self) -> int:
        return self.frame_words * 4

    @property
    def total_frames(self) -> int:
        """Approximate frame count implied by the full bitstream size."""
        return self.full_bitstream.bytes // self.frame_bytes

    def frames_for(self, size: DataSize) -> int:
        """Whole frames needed to hold ``size`` bytes of frame data."""
        return -(-size.bytes // self.frame_bytes)


# The platform of the headline result (ML506 board).  Full-device
# bitstream size of 2444 KB is quoted in Section IV of the paper.
VIRTEX5_SX50T = DeviceInfo(
    name="XC5VSX50T",
    family="virtex5",
    idcode=0x02E9A093,
    frame_words=41,
    rows=6,
    columns=88,
    minor_frames_clb=36,
    full_bitstream=DataSize(2444 * BYTES_PER_KB),
    process_nm=65,
    icap_width_bits=32,
    icap_fmax_nominal=Frequency.from_mhz(100),
    icap_fmax_demonstrated=Frequency.from_mhz(362.5),
    bram_fmax=Frequency.from_mhz(300),
    core_voltage=1.0,
)

# The power-measurement platform (ML605 board).  The paper reports that
# 362.5 MHz "is not reliable" on the V6 samples tested — a few MHz
# lower — so the demonstrated limit is set just below.
VIRTEX6_LX240T = DeviceInfo(
    name="XC6VLX240T",
    family="virtex6",
    idcode=0x0424A093,
    frame_words=81,
    rows=12,
    columns=156,
    minor_frames_clb=36,
    full_bitstream=DataSize(9017 * BYTES_PER_KB),
    process_nm=40,
    icap_width_bits=32,
    icap_fmax_nominal=Frequency.from_mhz(100),
    icap_fmax_demonstrated=Frequency.from_mhz(356.0),
    bram_fmax=Frequency.from_mhz(300),
    core_voltage=1.0,
)

# BRAM_HWICAP / MST_ICAP (Liu et al., FPL 2009) were measured on
# Virtex-4; included so the baseline models run on their native device.
VIRTEX4_FX60 = DeviceInfo(
    name="XC4VFX60",
    family="virtex4",
    idcode=0x01EB4093,
    frame_words=41,
    rows=8,
    columns=52,
    minor_frames_clb=22,
    full_bitstream=DataSize(2625 * BYTES_PER_KB),
    process_nm=90,
    icap_width_bits=32,
    icap_fmax_nominal=Frequency.from_mhz(100),
    icap_fmax_demonstrated=Frequency.from_mhz(120),
    bram_fmax=Frequency.from_mhz(250),
    core_voltage=1.2,
)

_DEVICES = {
    device.name: device
    for device in (VIRTEX5_SX50T, VIRTEX6_LX240T, VIRTEX4_FX60)
}


def device_by_name(name: str) -> DeviceInfo:
    """Look up a device description by part name."""
    try:
        return _DEVICES[name]
    except KeyError:
        known = ", ".join(sorted(_DEVICES))
        raise KeyError(f"unknown device {name!r}; known devices: {known}") \
            from None
