"""Configuration CRC (the bitstream's CRC register check).

Virtex-5 configuration logic accumulates a CRC-32C (Castagnoli
polynomial, as UG191 specifies) over every configuration write — the
register address bits followed by the data bits — and compares it with
the value written to the CRC register at the end of the bitstream; a
mismatch aborts configuration.

We implement CRC-32C bit-exactly (table-driven, reflected) and define
the accumulation convention used consistently by the generator and
the configuration-logic model: for each register write, update over
the 4 data bytes (big-endian) followed by one byte carrying the
register address.  (The silicon interleaves address and data bits at
the shift-register level; any fixed convention preserves the checked
property — detection of corrupted/mis-sequenced writes.)

The byte loop uses slicing-by-8: eight parallel tables fold eight
input bytes per iteration, the standard software trick for multi-GB/s
CRC rates.  It computes exactly the same polynomial division as the
one-table form (the tail loop below *is* the one-table form), just
with 8x fewer Python-level iterations — this CRC runs over every FDRI
word of every simulated reconfiguration, so it dominates sweep time.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

_POLY_REFLECTED = 0x82F63B78  # CRC-32C (Castagnoli), reflected form


def _build_tables() -> List[List[int]]:
    """Slicing-by-8 tables; ``tables[0]`` is the classic byte table."""
    table0 = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table0.append(crc)
    tables = [table0]
    for _ in range(7):
        previous = tables[-1]
        tables.append([(previous[byte] >> 8)
                       ^ table0[previous[byte] & 0xFF]
                       for byte in range(256)])
    return tables


_TABLES = _build_tables()
_TABLE = _TABLES[0]  # kept for the tail loop and external importers


def crc32c(data: bytes, crc: int = 0) -> int:
    """Plain CRC-32C over a byte string (incremental via ``crc``)."""
    crc ^= 0xFFFFFFFF
    t0, t1, t2, t3, t4, t5, t6, t7 = _TABLES
    length = len(data)
    index = 0
    end8 = length - (length & 7)
    while index < end8:
        low = crc ^ (data[index]
                     | (data[index + 1] << 8)
                     | (data[index + 2] << 16)
                     | (data[index + 3] << 24))
        high = (data[index + 4]
                | (data[index + 5] << 8)
                | (data[index + 6] << 16)
                | (data[index + 7] << 24))
        crc = (t7[low & 0xFF] ^ t6[(low >> 8) & 0xFF]
               ^ t5[(low >> 16) & 0xFF] ^ t4[low >> 24]
               ^ t3[high & 0xFF] ^ t2[(high >> 8) & 0xFF]
               ^ t1[(high >> 16) & 0xFF] ^ t0[high >> 24])
        index += 8
    while index < length:
        crc = (crc >> 8) ^ t0[(crc ^ data[index]) & 0xFF]
        index += 1
    return crc ^ 0xFFFFFFFF


class ConfigCrc:
    """The configuration logic's running CRC register."""

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        """The RCRC command."""
        self._value = 0

    def update(self, register_address: int, word: int) -> None:
        """Fold one register write into the CRC."""
        blob = word.to_bytes(4, "big") + bytes([register_address & 0x1F])
        self._value = crc32c(blob, self._value)

    def update_block(self, register_address: int,
                     words: Sequence[int]) -> None:
        """Fold consecutive writes of ``words`` to one register.

        Bit-identical to calling :meth:`update` once per word — the
        interleaved ``[4 data bytes][address byte]`` blob is built in
        bulk (strided slice assignment) and folded with one
        :func:`crc32c` call, which is what makes large FDRI payloads
        cheap.
        """
        count = len(words)
        if count == 0:
            return
        packed = struct.pack(">%dI" % count, *words)
        blob = bytearray(count * 5)
        blob[0::5] = packed[0::4]
        blob[1::5] = packed[1::4]
        blob[2::5] = packed[2::4]
        blob[3::5] = packed[3::4]
        blob[4::5] = bytes([register_address & 0x1F]) * count
        self._value = crc32c(bytes(blob), self._value)

    def check(self, expected: int) -> bool:
        """The CRC-register write comparison."""
        return self._value == expected
