"""Configuration CRC (the bitstream's CRC register check).

Virtex-5 configuration logic accumulates a CRC-32C (Castagnoli
polynomial, as UG191 specifies) over every configuration write — the
register address bits followed by the data bits — and compares it with
the value written to the CRC register at the end of the bitstream; a
mismatch aborts configuration.

We implement CRC-32C bit-exactly (table-driven, reflected) and define
the accumulation convention used consistently by the generator and
the configuration-logic model: for each register write, update over
the 4 data bytes (big-endian) followed by one byte carrying the
register address.  (The silicon interleaves address and data bits at
the shift-register level; any fixed convention preserves the checked
property — detection of corrupted/mis-sequenced writes.)
"""

from __future__ import annotations

from typing import List

_POLY_REFLECTED = 0x82F63B78  # CRC-32C (Castagnoli), reflected form


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """Plain CRC-32C over a byte string (incremental via ``crc``)."""
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


class ConfigCrc:
    """The configuration logic's running CRC register."""

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        """The RCRC command."""
        self._value = 0

    def update(self, register_address: int, word: int) -> None:
        """Fold one register write into the CRC."""
        blob = word.to_bytes(4, "big") + bytes([register_address & 0x1F])
        self._value = crc32c(blob, self._value)

    def check(self, expected: int) -> bool:
        """The CRC-register write comparison."""
        return self._value == expected
