"""Configuration CRC (the bitstream's CRC register check).

Virtex-5 configuration logic accumulates a CRC-32C (Castagnoli
polynomial, as UG191 specifies) over every configuration write — the
register address bits followed by the data bits — and compares it with
the value written to the CRC register at the end of the bitstream; a
mismatch aborts configuration.

We implement CRC-32C bit-exactly (table-driven, reflected) and define
the accumulation convention used consistently by the generator and
the configuration-logic model: for each register write, update over
the 4 data bytes (big-endian) followed by one byte carrying the
register address.  (The silicon interleaves address and data bits at
the shift-register level; any fixed convention preserves the checked
property — detection of corrupted/mis-sequenced writes.)

The byte-level folding is a :mod:`repro.accel` kernel: the pure
backend keeps the slicing-by-8 table walk, the numpy backend folds
64-byte chunks in parallel.  Both are bit-identical; this CRC runs
over every FDRI word of every simulated reconfiguration, so it
dominates sweep time and is worth accelerating.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro import accel

__all__ = ["ConfigCrc", "crc32c"]


def crc32c(data: bytes, crc: int = 0) -> int:
    """Plain CRC-32C over a byte string (incremental via ``crc``)."""
    return accel.crc32c(data, crc)


class ConfigCrc:
    """The configuration logic's running CRC register."""

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        """The RCRC command."""
        self._value = 0

    def update(self, register_address: int, word: int) -> None:
        """Fold one register write into the CRC."""
        blob = word.to_bytes(4, "big") + bytes([register_address & 0x1F])
        self._value = accel.crc32c(blob, self._value)

    def update_block(self, register_address: int,
                     words: Sequence[int]) -> None:
        """Fold consecutive writes of ``words`` to one register.

        Bit-identical to calling :meth:`update` once per word — the
        interleaved ``[4 data bytes][address byte]`` blob is built in
        bulk (strided slice assignment) and folded with one
        :func:`crc32c` call, which is what makes large FDRI payloads
        cheap.
        """
        count = len(words)
        if count == 0:
            return
        self.update_block_bytes(register_address,
                                struct.pack(">%dI" % count, *words))

    def update_block_bytes(self, register_address: int,
                           packed: bytes) -> None:
        """:meth:`update_block` taking the big-endian packed payload.

        Callers that already hold the serialized words (the generator
        caches its frame payload bytes) skip the re-pack.
        """
        count = len(packed) // 4
        if count == 0:
            return
        blob = bytearray(count * 5)
        blob[0::5] = packed[0::4]
        blob[1::5] = packed[1::4]
        blob[2::5] = packed[2::4]
        blob[3::5] = packed[3::4]
        blob[4::5] = bytes([register_address & 0x1F]) * count
        self._value = accel.crc32c(bytes(blob), self._value)

    def check(self, expected: int) -> bool:
        """The CRC-register write comparison."""
        return self._value == expected
