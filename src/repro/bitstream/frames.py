"""Configuration frame addressing (FAR).

The Frame Address Register selects which column of configuration
memory a frame write lands in.  We implement the Virtex-5 FAR layout
(UG191 table 6-10) — block type / top-bottom / row / column / minor —
with pack/unpack round-tripping, plus a linear enumeration used by the
generator to lay a partial region out as consecutive frames.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.bitstream.device import DeviceInfo
from repro.errors import BitstreamFormatError


class BlockType(enum.IntEnum):
    """FAR block-type field values (Virtex-5)."""

    CLB_IO_CLK = 0
    BRAM_CONTENT = 1
    BRAM_INTERCONNECT = 2  # virtex-4 only; kept for the baseline device


# Field widths of the Virtex-5 FAR (LSB first): minor 7, column 8,
# row 5, top/bottom 1, block type 3.
_MINOR_BITS = 7
_COLUMN_BITS = 8
_ROW_BITS = 5
_TOP_BITS = 1
_TYPE_BITS = 3

_MINOR_SHIFT = 0
_COLUMN_SHIFT = _MINOR_BITS
_ROW_SHIFT = _COLUMN_SHIFT + _COLUMN_BITS
_TOP_SHIFT = _ROW_SHIFT + _ROW_BITS
_TYPE_SHIFT = _TOP_SHIFT + _TOP_BITS


@dataclass(frozen=True, order=True)
class FrameAddress:
    """A decoded frame address."""

    block_type: BlockType
    top: int       # 0 = top half, 1 = bottom half
    row: int
    column: int
    minor: int

    def __post_init__(self) -> None:
        checks = (
            (self.top, _TOP_BITS, "top"),
            (self.row, _ROW_BITS, "row"),
            (self.column, _COLUMN_BITS, "column"),
            (self.minor, _MINOR_BITS, "minor"),
        )
        for value, bits, label in checks:
            if not 0 <= value < (1 << bits):
                raise BitstreamFormatError(
                    f"FAR field {label}={value} outside {bits}-bit range"
                )

    def pack(self) -> int:
        """Encode to the 32-bit FAR register value."""
        return (
            (int(self.block_type) << _TYPE_SHIFT)
            | (self.top << _TOP_SHIFT)
            | (self.row << _ROW_SHIFT)
            | (self.column << _COLUMN_SHIFT)
            | (self.minor << _MINOR_SHIFT)
        )

    @classmethod
    def unpack(cls, raw: int) -> "FrameAddress":
        """Decode a 32-bit FAR register value."""
        if not 0 <= raw < (1 << 32):
            raise BitstreamFormatError(f"FAR value {raw:#x} is not 32-bit")
        block = (raw >> _TYPE_SHIFT) & ((1 << _TYPE_BITS) - 1)
        try:
            block_type = BlockType(block)
        except ValueError:
            raise BitstreamFormatError(
                f"FAR block type {block} is not defined"
            ) from None
        return cls(
            block_type=block_type,
            top=(raw >> _TOP_SHIFT) & ((1 << _TOP_BITS) - 1),
            row=(raw >> _ROW_SHIFT) & ((1 << _ROW_BITS) - 1),
            column=(raw >> _COLUMN_SHIFT) & ((1 << _COLUMN_BITS) - 1),
            minor=(raw >> _MINOR_SHIFT) & ((1 << _MINOR_BITS) - 1),
        )

    def next_in(self, device: DeviceInfo) -> "FrameAddress":
        """The frame address following this one in device order.

        Advances minor, then column, then row, then top/bottom —
        the auto-increment order the configuration logic applies when
        consecutive frames stream through FDRI.  For in-geometry
        addresses this is a lookup in the device's memoised
        :class:`FrameLayout` (one successor table per device, built
        once instead of per generated bitstream); out-of-geometry
        addresses (a parsed FAR can carry any field values) fall back
        to the arithmetic stepping.
        """
        successor = frame_layout(device, self.block_type).successor(self)
        if successor is not None:
            return successor
        return self._next_arithmetic(device)

    def _next_arithmetic(self, device: DeviceInfo) -> "FrameAddress":
        """Field-arithmetic successor (the FrameLayout ground truth)."""
        minor = self.minor + 1
        column, row, top = self.column, self.row, self.top
        if minor >= device.minor_frames_clb:
            minor = 0
            column += 1
            if column >= device.columns:
                column = 0
                row += 1
                if row >= max(1, device.rows // 2):
                    row = 0
                    top ^= 1
        return FrameAddress(self.block_type, top, row, column, minor)


class FrameLayout:
    """Memoised linear frame order for one device and block type.

    Walking a region frame by frame calls ``next_in`` once per frame;
    before this table existed, every generated bitstream re-ran the
    field arithmetic (and ``FrameAddress`` construction with its field
    validation) for each of its thousands of frames.  The layout walks
    the device's full address cycle *once* with the arithmetic rule —
    so the table is correct by construction — and serves successors by
    dictionary lookup afterwards.
    """

    __slots__ = ("device", "block_type", "addresses", "_successor")

    def __init__(self, device: DeviceInfo, block_type: BlockType) -> None:
        self.device = device
        self.block_type = block_type
        cycle = (device.minor_frames_clb * device.columns
                 * max(1, device.rows // 2) * 2)
        addresses = []
        address = FrameAddress(block_type, top=0, row=0, column=0, minor=0)
        for _ in range(cycle):
            addresses.append(address)
            address = address._next_arithmetic(device)
        self.addresses: Tuple[FrameAddress, ...] = tuple(addresses)
        successor: Dict[FrameAddress, FrameAddress] = {}
        for index, entry in enumerate(addresses):
            successor[entry] = addresses[(index + 1) % cycle]
        self._successor = successor

    def successor(self, address: FrameAddress):
        """The next in-geometry address, or None if out of geometry."""
        return self._successor.get(address)

    def __len__(self) -> int:
        return len(self.addresses)


_LAYOUTS: Dict[Tuple[DeviceInfo, BlockType], FrameLayout] = {}


def frame_layout(device: DeviceInfo,
                 block_type: BlockType = BlockType.CLB_IO_CLK) -> FrameLayout:
    """The memoised :class:`FrameLayout` for ``device``/``block_type``.

    Keyed by the (frozen, hashable) :class:`DeviceInfo` value itself:
    two equal device descriptions share one layout, and a device with
    different frame geometry always gets its own — the memo can never
    serve stale state because its key objects are immutable.
    """
    key = (device, block_type)
    layout = _LAYOUTS.get(key)
    if layout is None:
        layout = _LAYOUTS[key] = FrameLayout(device, block_type)
    return layout


def region_frames(device: DeviceInfo, start: FrameAddress,
                  count: int) -> Iterator[FrameAddress]:
    """Enumerate ``count`` consecutive frame addresses from ``start``."""
    if count < 0:
        raise ValueError("frame count must be non-negative")
    address = start
    for _ in range(count):
        yield address
        address = address.next_in(device)
