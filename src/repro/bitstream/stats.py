"""Bitstream content statistics.

Quantifies the structural properties the synthetic generator is
calibrated to produce — byte entropy, zero fraction, word-repeat
structure — so tests can assert the generator stays within the regime
that makes the Table I comparison meaningful, and users can compare
their own (real) bitstreams against the synthetic corpus.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ContentStats:
    """Summary statistics of one configuration byte stream."""

    size_bytes: int
    byte_entropy_bits: float       # 0..8
    zero_byte_fraction: float
    zero_word_fraction: float
    distinct_words: int
    word_repeat_fraction: float    # words equal to their predecessor
    mean_zero_run_words: float

    @property
    def compressibility_floor_percent(self) -> float:
        """Entropy bound on any byte-level entropy coder's ratio."""
        return (1.0 - self.byte_entropy_bits / 8.0) * 100.0


def byte_entropy(data: bytes) -> float:
    """Shannon entropy of the byte distribution, in bits/byte."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    return -sum(count / total * math.log2(count / total)
                for count in counts.values())


def _words_of(data: bytes) -> List[bytes]:
    return [data[index:index + 4]
            for index in range(0, len(data) - len(data) % 4, 4)]


def content_stats(data: bytes) -> ContentStats:
    """Compute the full summary for a byte stream."""
    words = _words_of(data)
    zero_word = b"\x00\x00\x00\x00"
    zero_words = sum(1 for word in words if word == zero_word)
    repeats = sum(1 for first, second in zip(words, words[1:])
                  if first == second)

    # Zero-run statistics (in words).
    runs: List[int] = []
    current = 0
    for word in words:
        if word == zero_word:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)

    return ContentStats(
        size_bytes=len(data),
        byte_entropy_bits=byte_entropy(data),
        zero_byte_fraction=(data.count(0) / len(data)) if data else 0.0,
        zero_word_fraction=zero_words / len(words) if words else 0.0,
        distinct_words=len(set(words)),
        word_repeat_fraction=repeats / (len(words) - 1)
        if len(words) > 1 else 0.0,
        mean_zero_run_words=sum(runs) / len(runs) if runs else 0.0,
    )
