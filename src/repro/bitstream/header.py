"""BIT-file preamble (the header the Manager parses and strips).

Xilinx ``.bit`` files prepend a tagged header to the raw bitstream:
a fixed magic, then fields ``a`` (design name), ``b`` (part name),
``c`` (date), ``d`` (time), each length-prefixed, and ``e`` carrying
the 32-bit length of the raw bitstream that follows.  Section III-A-1
of the paper: *"Partial bitstream data contain a preamble which
determines the attributes such as file name, FPGA device ID, bitstream
size, etc."* — this is that preamble.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.errors import BitstreamFormatError

# The fixed 13-byte field that opens every .bit file (a 9-byte magic
# length-prefixed, then the 2-byte field count "0001").
_MAGIC = bytes([0x00, 0x09, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0,
                0x0F, 0xF0, 0x00, 0x00, 0x01])


@dataclass(frozen=True)
class BitstreamHeader:
    """Decoded BIT-file preamble fields."""

    design_name: str
    part_name: str
    date: str
    time: str
    payload_length: int

    def encode(self) -> bytes:
        """Serialize the preamble (everything before the raw bitstream)."""
        out = bytearray(_MAGIC)
        for tag, text in (
            (b"a", self.design_name),
            (b"b", self.part_name),
            (b"c", self.date),
            (b"d", self.time),
        ):
            blob = text.encode("ascii") + b"\x00"
            out += tag + struct.pack(">H", len(blob)) + blob
        out += b"e" + struct.pack(">I", self.payload_length)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["BitstreamHeader", int]:
        """Parse a preamble; returns (header, offset of raw bitstream)."""
        if not data.startswith(_MAGIC):
            raise BitstreamFormatError("missing BIT-file magic")
        offset = len(_MAGIC)
        fields = {}
        for expected in (b"a", b"b", b"c", b"d"):
            if data[offset:offset + 1] != expected:
                raise BitstreamFormatError(
                    f"expected field {expected!r} at offset {offset}"
                )
            offset += 1
            if offset + 2 > len(data):
                raise BitstreamFormatError("truncated field length")
            (length,) = struct.unpack_from(">H", data, offset)
            offset += 2
            blob = data[offset:offset + length]
            if len(blob) != length:
                raise BitstreamFormatError("truncated field payload")
            offset += length
            fields[expected] = blob.rstrip(b"\x00").decode("ascii")
        if data[offset:offset + 1] != b"e":
            raise BitstreamFormatError("missing length field 'e'")
        offset += 1
        if offset + 4 > len(data):
            raise BitstreamFormatError("truncated payload length")
        (payload_length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        header = cls(
            design_name=fields[b"a"],
            part_name=fields[b"b"],
            date=fields[b"c"],
            time=fields[b"d"],
            payload_length=payload_length,
        )
        return header, offset
