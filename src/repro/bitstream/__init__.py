"""Xilinx-style bitstream substrate.

Models the parts of the Virtex configuration architecture that the
paper's system touches: device descriptions (Virtex-5 XC5VSX50T and
Virtex-6 XC6VLX240T, plus the Virtex-4 of the BRAM_HWICAP baseline),
frame addressing, type-1/type-2 configuration packets, the BIT-file
preamble the Manager parses, a synthetic partial-bitstream generator
with controllable resource-utilization ratio, and a parser.

The generator is the substitution for the real `.bit` files the paper
measured: it emits byte streams with the same structural redundancy
sources (blank frames, repeated routing motifs, dense LUT payloads) so
the Table I compression comparison is meaningful.
"""

from repro.bitstream.device import (
    DeviceInfo,
    VIRTEX4_FX60,
    VIRTEX5_SX50T,
    VIRTEX6_LX240T,
    device_by_name,
)
from repro.bitstream.frames import FrameAddress, BlockType
from repro.bitstream.format import (
    ConfigPacket,
    ConfigRegister,
    Command,
    Opcode,
    SYNC_WORD,
    DUMMY_WORD,
)
from repro.bitstream.header import BitstreamHeader
from repro.bitstream.generator import BitstreamSpec, PartialBitstream, generate_bitstream
from repro.bitstream.parser import BitstreamParser, ParsedBitstream

__all__ = [
    "DeviceInfo",
    "VIRTEX4_FX60",
    "VIRTEX5_SX50T",
    "VIRTEX6_LX240T",
    "device_by_name",
    "FrameAddress",
    "BlockType",
    "ConfigPacket",
    "ConfigRegister",
    "Command",
    "Opcode",
    "SYNC_WORD",
    "DUMMY_WORD",
    "BitstreamHeader",
    "BitstreamSpec",
    "PartialBitstream",
    "generate_bitstream",
    "BitstreamParser",
    "ParsedBitstream",
]
