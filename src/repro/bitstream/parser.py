"""Bitstream parser — the Manager's preamble/packet reader.

Section III-A-1: the Manager "read[s] the bitstream file in the
external memory, parsing the preamble of the partial bitstream and
then loading bitstream size followed by the configuration data into
the BRAM".  This module is that parsing step: it validates the BIT
preamble, checks the device IDCODE, locates the sync word, and exposes
the raw configuration words to preload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bitstream.device import DeviceInfo
from repro.bitstream.format import (
    ConfigPacket,
    ConfigRegister,
    Opcode,
    PacketDecoder,
    SYNC_WORD,
    bytes_to_words,
)
from repro.bitstream.header import BitstreamHeader
from repro.errors import BitstreamFormatError, DeviceMismatchError
from repro.units import DataSize


@dataclass
class ParsedBitstream:
    """Result of parsing a .bit file."""

    header: BitstreamHeader
    raw_words: List[int]          # everything after the preamble
    sync_index: int               # word index of the sync word
    packets: List[ConfigPacket]   # decoded packets after sync
    idcode: Optional[int]

    @property
    def size(self) -> DataSize:
        """Size of the configuration word stream (what BRAM must hold)."""
        return DataSize.from_words(len(self.raw_words))

    @property
    def frame_data_words(self) -> int:
        """Total FDRI payload words (the actual frame data volume)."""
        return sum(len(packet.payload) for packet in self.packets
                   if packet.register is ConfigRegister.FDRI
                   and packet.opcode is Opcode.WRITE)


class BitstreamParser:
    """Parses .bit files, optionally validating the target device."""

    def __init__(self, device: Optional[DeviceInfo] = None,
                 decode_packets: bool = True) -> None:
        self._device = device
        self._decode_packets = decode_packets

    def parse(self, file_bytes: bytes) -> ParsedBitstream:
        header, offset = BitstreamHeader.decode(file_bytes)
        raw = file_bytes[offset:]
        if len(raw) != header.payload_length:
            raise BitstreamFormatError(
                f"preamble declares {header.payload_length} raw bytes but "
                f"{len(raw)} follow"
            )
        raw_words = bytes_to_words(raw)
        sync_index = self._find_sync(raw_words)
        packets: List[ConfigPacket] = []
        idcode: Optional[int] = None
        if self._decode_packets:
            decoder = PacketDecoder(raw_words[sync_index + 1:])
            packets = [packet for packet in decoder.decode_all()
                       if packet.opcode is not Opcode.NOP or packet.payload]
            idcode = self._extract_idcode(packets)
            self._check_device(header, idcode)
        return ParsedBitstream(
            header=header,
            raw_words=raw_words,
            sync_index=sync_index,
            packets=packets,
            idcode=idcode,
        )

    @staticmethod
    def _find_sync(words: List[int]) -> int:
        for index, word in enumerate(words):
            if word == SYNC_WORD:
                return index
        raise BitstreamFormatError("sync word 0xAA995566 not found")

    @staticmethod
    def _extract_idcode(packets: List[ConfigPacket]) -> Optional[int]:
        for packet in packets:
            if (packet.register is ConfigRegister.IDCODE
                    and packet.opcode is Opcode.WRITE and packet.payload):
                return packet.payload[0]
        return None

    def _check_device(self, header: BitstreamHeader,
                      idcode: Optional[int]) -> None:
        if self._device is None:
            return
        if idcode is not None and idcode != self._device.idcode:
            raise DeviceMismatchError(
                f"bitstream IDCODE {idcode:#010x} does not match device "
                f"{self._device.name} ({self._device.idcode:#010x})"
            )
        declared = header.part_name.lower()
        expected = self._device.name.lower()
        if declared and expected not in declared and declared not in expected:
            raise DeviceMismatchError(
                f"bitstream targets part {header.part_name!r}, device is "
                f"{self._device.name}"
            )
