"""Synthetic partial-bitstream generator.

The paper measured real Virtex-5 partial bitstreams; those are not
reproducible without the boards and the vendor toolchain, so this
module synthesizes byte streams with the same *statistical structure*
(the property Table I's compression comparison depends on):

* **Blank frames** — unconfigured columns are all-zero frames.  The
  paper deliberately used high-utilization regions to avoid inflating
  ratios, so the default utilization is high (0.92).
* **Routing motifs** — interconnect configuration reuses a small
  vocabulary of switch-box patterns; the same words recur within and
  across frames (what LZ77/LZ78/X-MatchPRO exploit).
* **Column periodicity** — frames of the same column type share layout,
  so content correlates at frame-size lags.
* **Dense LUT payloads** — logic truth tables are high-entropy words
  (what bounds every codec's ratio from above).
* **Byte skew** — even "used" words contain many zero bytes (sparse
  bits set), which is what plain Huffman exploits.

The mixture weights below were calibrated so the from-scratch codecs in
:mod:`repro.compress` land near the paper's Table I column (RLE 63 %,
... 7-zip 81.9 %).  EXPERIMENTS.md records measured-vs-paper values.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import List, Optional

from repro import accel
from repro.accel.plan import COPY, FILL, SynthesisPlan
from repro.bitstream.device import DeviceInfo, VIRTEX5_SX50T
from repro.bitstream.format import (
    BUS_WIDTH_DETECT,
    BUS_WIDTH_SYNC,
    Command,
    ConfigRegister,
    DUMMY_WORD,
    NOOP_WORD,
    SYNC_WORD,
    command_packet,
    type2_write_headers,
    words_to_bytes,
    write_packet,
)
from repro.bitstream.frames import BlockType, FrameAddress
from repro.bitstream.header import BitstreamHeader
from repro.errors import BitstreamError
from repro.units import DataSize


@dataclass(frozen=True)
class BitstreamSpec:
    """Parameters of a synthetic partial bitstream.

    Used frames are filled with *runs* of words, not independent
    words — configuration memory is run-structured (identical switch
    patterns repeated down a column, zero filler between used
    resources), which is precisely what gives RLE its 63 % in Table I.
    The weights select the run category; run lengths are geometric.
    """

    device: DeviceInfo = VIRTEX5_SX50T
    size: DataSize = DataSize.from_kb(216.5)
    origin: FrameAddress = FrameAddress(BlockType.CLB_IO_CLK, top=0,
                                        row=0, column=4, minor=0)
    utilization: float = 0.92     # fraction of non-blank frames
    motif_pool: int = 8           # distinct routing words in the vocabulary
    zero_run_weight: float = 0.2534  # P(run of zero filler words)
    zero_run_mean: float = 6.8       # mean zero-run length (words)
    motif_run_weight: float = 0.1779 # P(run of one routing motif)
    motif_run_mean: float = 1.281    # mean motif-run length
    copy_weight: float = 0.0942      # P(copy a span from previous frame)
    copy_run_mean: float = 6.796     # mean copied-span length
    sparse_weight: float = 0.4246    # P(single skewed-byte texture word)
    dense_weight: float = 0.0499     # P(single dense LUT word)
    seed: int = 2012              # DATE 2012
    design_name: str = "partial_module"

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0:
            raise BitstreamError(
                f"utilization must be in [0, 1], got {self.utilization}"
            )
        weights = (self.zero_run_weight, self.motif_run_weight,
                   self.copy_weight, self.sparse_weight, self.dense_weight)
        if any(w < 0 for w in weights):
            raise BitstreamError("mixture weights must be >= 0")
        if abs(sum(weights) - 1.0) > 1e-9:
            raise BitstreamError(
                f"mixture weights must sum to 1, got {sum(weights)}"
            )
        for mean in (self.zero_run_mean, self.motif_run_mean,
                     self.copy_run_mean):
            if mean < 1.0:
                raise BitstreamError("run-length means must be >= 1")
        if self.size.bytes <= 0:
            raise BitstreamError("bitstream size must be positive")


@dataclass
class PartialBitstream:
    """A generated partial bitstream and its views.

    ``file_bytes``   — the full .bit file (preamble + raw bitstream),
                       what sits in external memory.
    ``raw_words``    — the raw configuration word stream (sync +
                       packets), what actually goes through ICAP.
    ``frame_payload``— just the FDRI frame data, the compressible body.

    The stream is stored in three pieces — prologue words, packed FDRI
    payload bytes, epilogue words — because every hot consumer (the
    codecs, file round trips, the UPaRC datapath) reads the payload as
    *bytes*.  ``raw_words`` is derived lazily and cached the first
    time a word-level consumer (the baseline ICAP controllers, the
    floorplan report) asks for it.
    """

    spec: BitstreamSpec
    header: BitstreamHeader
    #: Words before the FDRI payload, including its packet headers.
    shell_prologue: List[int]
    #: Words after the payload (LFRM, CRC, DESYNC, padding).
    shell_epilogue: List[int]
    #: Packed big-endian FDRI frame data (the compressible body).
    payload_data: bytes
    frame_count: int
    _raw_words: Optional[List[int]] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def frame_payload_offset(self) -> int:
        """Word index of the first FDRI data word."""
        return len(self.shell_prologue)

    @property
    def frame_payload_words(self) -> int:
        return len(self.payload_data) // 4

    @property
    def raw_words(self) -> List[int]:
        if self._raw_words is None:
            self._raw_words = (self.shell_prologue
                               + accel.bytes_to_words(self.payload_data)
                               + self.shell_epilogue)
        return self._raw_words

    @property
    def raw_bytes(self) -> bytes:
        return (words_to_bytes(self.shell_prologue)
                + self.payload_data
                + words_to_bytes(self.shell_epilogue))

    @property
    def file_bytes(self) -> bytes:
        return self.header.encode() + self.raw_bytes

    @property
    def frame_payload(self) -> bytes:
        return self.payload_data

    @property
    def size(self) -> DataSize:
        return DataSize(len(self.shell_prologue) * 4
                        + len(self.payload_data)
                        + len(self.shell_epilogue) * 4)


class _FrameSynthesizer:
    """Plans frame content as runs following the statistical mixture.

    The synthesizer is a *planner*: it makes every RNG draw (so the
    stream of random numbers consumed is exactly the historical
    sequence, keeping all seeded outputs bit-identical) but emits
    run-level ops into a :class:`~repro.accel.plan.SynthesisPlan`
    instead of appending words one by one.  The active
    :mod:`repro.accel` backend then materialises the plan in bulk.

    Two sequence-preserving details matter:

    * a run that overshoots the frame boundary is *clipped in the op*
      but its run-length draws are still consumed (the old code built
      the long run and truncated with ``words[:target]``);
    * copies from the previous frame read ``frame_words`` behind the
      write position, and are available from frame 1 onward (every
      frame, blank or used, becomes the next frame's copy source).
    """

    def __init__(self, spec: BitstreamSpec) -> None:
        self._spec = spec
        self._rng = random.Random(spec.seed)
        # Motifs are sparse-ish words themselves (routing bits are a
        # minority of each word), keeping the byte histogram skewed.
        self._motifs = [self._sparse_word(bits=self._rng.randint(2, 10))
                        for _ in range(spec.motif_pool)]
        # Byte vocabulary for "configuration texture" words: words that
        # rarely repeat exactly (little for dictionary coders to grab)
        # but whose bytes follow a heavily skewed, zipf-like histogram
        # (what byte-level Huffman exploits).
        pool_size = 20
        self._byte_pool = [self._rng.randrange(1, 256)
                           for _ in range(pool_size)]
        self._byte_weights = [1.0 / (rank + 1) for rank in range(pool_size)]
        # random.choices() computes cumulative weights on every call;
        # precomputing them and sampling via bisect draws the same
        # single random() per word, so the sequence is unchanged.
        self._cum_weights = list(accumulate(self._byte_weights))
        self._cum_total = self._cum_weights[-1] + 0.0
        self._have_previous = False

    def plan(self, frame_count: int) -> SynthesisPlan:
        """Plan ``frame_count`` frames of payload ops.

        The mixture logic (one blank-frame gate per frame, then
        category draws until the frame is full) is fully inlined: the
        planner is the last pure-Python per-word-ish loop on the
        mode-ii critical path, so run-length geometrics, texture-word
        synthesis and op appends all run on local bindings.  The RNG
        draw *sequence* is the contract — every branch consumes
        exactly the draws the historical per-method code did, keeping
        all seeded payloads bit-identical.
        """
        spec = self._spec
        rng = self._rng
        random = rng.random
        choice = rng.choice
        getrandbits = rng.getrandbits
        plan = SynthesisPlan(spec.device.frame_words)
        # Ops accumulate in plain lists (cheapest append) and become
        # the plan's typed arrays in one bulk constructor at the end.
        kinds: list = []
        values: list = []
        lengths: list = []
        kind_append = kinds.append
        value_append = values.append
        length_append = lengths.append
        target = spec.device.frame_words
        utilization = spec.utilization
        # Cumulative category thresholds, accumulated in the historical
        # order so the float comparisons are bit-for-bit unchanged.
        zero_threshold = spec.zero_run_weight
        motif_threshold = zero_threshold + spec.motif_run_weight
        copy_threshold = motif_threshold + spec.copy_weight
        sparse_threshold = copy_threshold + spec.sparse_weight
        # Geometric success probabilities (None: mean <= 1 draws nothing).
        zero_success = (1.0 / spec.zero_run_mean
                        if spec.zero_run_mean > 1.0 else None)
        motif_success = (1.0 / spec.motif_run_mean
                         if spec.motif_run_mean > 1.0 else None)
        copy_success = (1.0 / spec.copy_run_mean
                        if spec.copy_run_mean > 1.0 else None)
        motifs = self._motifs
        pool = self._byte_pool
        cum = self._cum_weights
        total = self._cum_total
        hi = len(pool) - 1
        have_previous = self._have_previous
        for _ in range(frame_count):
            if random() >= utilization:
                # Blank (unconfigured) frame.
                kind_append(FILL)
                value_append(0)
                length_append(target)
                have_previous = True
                continue
            position = 0
            while position < target:
                draw = random()
                if draw < zero_threshold:
                    length = 1
                    if zero_success is not None:
                        while random() > zero_success:
                            length += 1
                    remaining = target - position
                    if length > remaining:
                        length = remaining
                    kind_append(FILL)
                    value_append(0)
                    length_append(length)
                    position += length
                elif draw < motif_threshold:
                    motif = choice(motifs)
                    length = 1
                    if motif_success is not None:
                        while random() > motif_success:
                            length += 1
                    remaining = target - position
                    if length > remaining:
                        length = remaining
                    kind_append(FILL)
                    value_append(motif)
                    length_append(length)
                    position += length
                elif draw < copy_threshold and have_previous:
                    length = 1
                    if copy_success is not None:
                        while random() > copy_success:
                            length += 1
                    remaining = target - position
                    if length > remaining:
                        length = remaining
                    kind_append(COPY)
                    value_append(0)
                    length_append(length)
                    position += length
                elif draw < sparse_threshold or not have_previous:
                    # Texture word: skewed-byte configuration content.
                    word = 0
                    for _byte in range(4):
                        if random() < 0.45:
                            word <<= 8
                        else:
                            word = (word << 8) \
                                | pool[bisect(cum, random() * total, 0, hi)]
                    kind_append(FILL)
                    value_append(word)
                    length_append(1)
                    position += 1
                else:
                    kind_append(FILL)  # dense LUT word
                    value_append(getrandbits(32))
                    length_append(1)
                    position += 1
            have_previous = True
        self._have_previous = have_previous
        plan.kinds = array("B", kinds)
        plan.values = array("I", values)
        plan.lengths = array("I", lengths)
        # Every frame sums to exactly frame_words (runs are clipped at
        # the boundary), so the total is closed-form.
        plan.total_words = frame_count * target
        return plan

    def _sparse_word(self, bits: int) -> int:
        word = 0
        for _ in range(bits):
            word |= 1 << self._rng.randrange(32)
        return word


def generate_bitstream(spec: Optional[BitstreamSpec] = None,
                       **overrides) -> PartialBitstream:
    """Generate a structurally valid synthetic partial bitstream.

    ``overrides`` are applied on top of ``spec`` (or the default spec),
    e.g. ``generate_bitstream(size=DataSize.from_kb(80), seed=7)``.
    """
    if spec is None:
        spec = BitstreamSpec()
    if overrides:
        spec = BitstreamSpec(**{**spec.__dict__, **overrides})
    device = spec.device

    # Command prologue word count (measured once below) is constant, so
    # size the FDRI payload to hit the requested total raw size.
    prologue, epilogue = _command_shell(spec)
    shell_words = len(prologue) + len(epilogue) + 2  # + type1/type2 headers
    target_words = spec.size.words
    payload_words = max(device.frame_words, target_words - shell_words)
    frame_count = max(1, payload_words // device.frame_words)
    payload_words = frame_count * device.frame_words

    synthesizer = _FrameSynthesizer(spec)
    plan = synthesizer.plan(frame_count)
    payload_data = accel.synthesize_payload(plan)

    shell_prologue = prologue + type2_write_headers(ConfigRegister.FDRI,
                                                    payload_words)
    epilogue = _finish_epilogue(spec, payload_data, epilogue)

    header = BitstreamHeader(
        design_name=f"{spec.design_name}.ncd",
        part_name=device.name.lower(),
        date="2012/03/12",
        time="14:00:00",
        payload_length=(len(shell_prologue) + payload_words
                        + len(epilogue)) * 4,
    )
    return PartialBitstream(
        spec=spec,
        header=header,
        shell_prologue=shell_prologue,
        shell_epilogue=epilogue,
        payload_data=payload_data,
        frame_count=frame_count,
    )


# Default region origin (kept for backwards-compatible imports; a
# spec's ``origin`` field is what the generated bitstream targets).
REGION_ORIGIN = FrameAddress(BlockType.CLB_IO_CLK, top=0, row=0,
                             column=4, minor=0)


def frame_repair_bitstream(device: DeviceInfo, origin: FrameAddress,
                           frames: List[List[int]],
                           design_name: str = "frame_repair",
                           ) -> PartialBitstream:
    """A minimal partial bitstream writing exact frames at ``origin``.

    The scrubbing building block: repair only the corrupted frame(s)
    instead of rewriting the whole region.  The caller supplies the
    golden frame contents (e.g. from
    :meth:`~repro.bitstream.generator.PartialBitstream.frame_payload`
    or a readback of a healthy lane); the result is a structurally
    valid bitstream the ICAP/configuration logic accepts, CRC and all.
    """
    if not frames:
        raise BitstreamError("frame repair needs at least one frame")
    flat: List[int] = []
    for index, frame in enumerate(frames):
        if len(frame) != device.frame_words:
            raise BitstreamError(
                f"frame {index} has {len(frame)} words; {device.name} "
                f"frames are {device.frame_words} words"
            )
        flat.extend(frame)

    spec = BitstreamSpec(device=device, size=DataSize.from_words(
        len(flat) + 64), origin=origin, design_name=design_name)
    prologue, epilogue = _command_shell(spec)
    shell_prologue = prologue + type2_write_headers(ConfigRegister.FDRI,
                                                    len(flat))
    epilogue = _finish_epilogue(spec, flat, epilogue)
    header = BitstreamHeader(
        design_name=f"{design_name}.ncd",
        part_name=device.name.lower(),
        date="2012/03/12",
        time="14:00:00",
        payload_length=(len(shell_prologue) + len(flat)
                        + len(epilogue)) * 4,
    )
    return PartialBitstream(
        spec=spec,
        header=header,
        shell_prologue=shell_prologue,
        shell_epilogue=epilogue,
        payload_data=words_to_bytes(flat),
        frame_count=len(frames),
    )


def _command_shell(spec: BitstreamSpec):
    """Standard packet prologue/epilogue around the FDRI payload.

    The epilogue returned here carries a placeholder CRC word;
    :func:`_finish_epilogue` replaces it with the true configuration
    CRC once the frame payload is known (the configuration-logic model
    rejects bitstreams whose CRC does not verify).
    """
    device = spec.device
    prologue_packets = [
        command_packet(Command.RCRC),
        write_packet(ConfigRegister.IDCODE, [device.idcode]),
        command_packet(Command.WCFG),
        write_packet(ConfigRegister.FAR, [spec.origin.pack()]),
    ]
    prologue: List[int] = [DUMMY_WORD, BUS_WIDTH_SYNC, BUS_WIDTH_DETECT,
                           DUMMY_WORD, SYNC_WORD, NOOP_WORD]
    for packet in prologue_packets:
        prologue.extend(packet.encode())

    epilogue_packets = [
        command_packet(Command.LFRM),
        write_packet(ConfigRegister.CRC, [0]),  # patched later
        command_packet(Command.DESYNC),
    ]
    epilogue: List[int] = []
    for packet in epilogue_packets:
        epilogue.extend(packet.encode())
    epilogue.extend([NOOP_WORD, NOOP_WORD])
    return prologue, epilogue


def _finish_epilogue(spec: BitstreamSpec, frame_data,
                     epilogue: List[int]) -> List[int]:
    """Patch the epilogue's CRC word with the true configuration CRC.

    Mirrors the accumulation the configuration logic performs
    (:class:`repro.bitstream.crc.ConfigCrc`): RCRC resets, then every
    register write after it folds in, in stream order.  ``frame_data``
    is the FDRI payload as either a word list or already-packed
    big-endian bytes (the generator hands over its cached bytes to
    avoid re-serializing the payload).
    """
    from repro.bitstream.crc import ConfigCrc
    crc = ConfigCrc()
    crc.update(int(ConfigRegister.IDCODE), spec.device.idcode)
    crc.update(int(ConfigRegister.CMD), int(Command.WCFG))
    crc.update(int(ConfigRegister.FAR), spec.origin.pack())
    if isinstance(frame_data, bytes):
        crc.update_block_bytes(int(ConfigRegister.FDRI), frame_data)
    else:
        crc.update_block(int(ConfigRegister.FDRI), frame_data)
    crc.update(int(ConfigRegister.CMD), int(Command.LFRM))
    patched = list(epilogue)
    # The CRC payload word follows its type-1 header; locate it: the
    # epilogue is [CMD hdr, LFRM, CRC hdr, value, CMD hdr, DESYNC, ...].
    patched[3] = crc.value
    return patched
