"""Hardware decompressor timing model.

UPaRC's decompressor block (Fig. 2) is itself dynamically
reconfigurable: different algorithms can be swapped in, each with its
own maximum frequency and per-cycle output rate (Section III-C and the
future-work section).  The library below records the operating points
the paper discusses:

* **X-MatchPRO** — 64-bit datapath, 2 words/cycle at up to 126 MHz:
  the 1.008 GB/s of UPaRC_ii in Table III.
* **FaRM-RLE** — FaRM's run-length decoder, 1 word/cycle to 200 MHz
  (FaRM's 800 MB/s ceiling).
* **LZ77 / Huffman** — plausible alternates used by the run-time
  codec-swap ablation.

The *functional* decompression is done by the matching codec from
:mod:`repro.compress` (the data really is decompressed and verified);
this model supplies the timing and the area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.compress.base import Codec
from repro.compress.registry import codec_by_name
from repro.errors import FrequencyError, HardwareModelError
from repro.sim import ActivityTrace, Clock, Simulator
from repro.units import Frequency, ceil_div


@dataclass(frozen=True)
class DecompressorSpec:
    """Operating envelope of one decompressor implementation."""

    name: str                 # library key
    codec_name: str           # repro.compress registry name
    words_per_cycle: float    # output words per CLK_3 cycle
    max_frequency: Frequency
    luts: int
    ffs: int
    bram36: int = 0

    def output_bandwidth_mbps(self, frequency: Frequency) -> float:
        """Decompressed output bandwidth at a given CLK_3."""
        if frequency > self.max_frequency:
            raise FrequencyError(
                f"decompressor {self.name!r} limited to {self.max_frequency}"
            )
        return frequency.hertz * self.words_per_cycle * 4 / (1024 * 1024)


DECOMPRESSOR_LIBRARY: Dict[str, DecompressorSpec] = {
    "x-matchpro": DecompressorSpec(
        name="x-matchpro",
        codec_name="X-MatchPRO",
        words_per_cycle=2.0,
        max_frequency=Frequency.from_mhz(126),
        luts=2880,
        ffs=3312,
        bram36=4,
    ),
    "farm-rle": DecompressorSpec(
        name="farm-rle",
        codec_name="RLE",
        words_per_cycle=1.0,
        max_frequency=Frequency.from_mhz(200),
        luts=420,
        ffs=310,
    ),
    "lz77": DecompressorSpec(
        name="lz77",
        codec_name="LZ77",
        words_per_cycle=1.0,
        max_frequency=Frequency.from_mhz(150),
        luts=980,
        ffs=760,
        bram36=1,
    ),
    "huffman": DecompressorSpec(
        name="huffman",
        codec_name="Huffman",
        words_per_cycle=0.5,
        max_frequency=Frequency.from_mhz(180),
        luts=640,
        ffs=512,
        bram36=1,
    ),
}


class HardwareDecompressor:
    """Streaming decompressor instance bound to CLK_3.

    Functional path: :meth:`expand` really decompresses with the
    matching software codec and returns the original bytes.  Timing
    path: :meth:`stream_cycles` gives the CLK_3 cycles to emit a given
    number of output words (output-rate limited; the compressed input
    side always keeps up because it reads fewer words than it writes).
    """

    def __init__(self, sim: Simulator, spec: DecompressorSpec,
                 clock: Clock) -> None:
        self._sim = sim
        self.spec = spec
        self.clock = clock
        self.activity = ActivityTrace(sim, f"decompressor.{spec.name}")
        self._codec: Codec = codec_by_name(spec.codec_name)

    def check_frequency(self) -> None:
        if self.clock.frequency > self.spec.max_frequency:
            raise FrequencyError(
                f"decompressor {self.spec.name!r} at {self.clock.frequency} "
                f"exceeds its maximum {self.spec.max_frequency}"
            )

    def compress_offline(self, data: bytes) -> bytes:
        """The PC-side compression step of preloading mode ii."""
        return self._codec.compress(data)

    def expand(self, compressed: bytes) -> bytes:
        """Functionally decompress (bit-exact, verified by tests)."""
        return self._codec.decompress(compressed)

    def stream_cycles(self, output_words: int) -> int:
        """CLK_3 cycles to emit ``output_words`` decompressed words."""
        if output_words < 0:
            raise HardwareModelError("negative word count")
        if self.spec.words_per_cycle >= 1.0:
            return ceil_div(output_words, int(self.spec.words_per_cycle))
        cycles_per_word = 1.0 / self.spec.words_per_cycle
        return round(output_words * cycles_per_word)

    def output_bandwidth_mbps(self) -> float:
        return self.spec.output_bandwidth_mbps(self.clock.frequency)
