"""Hardware manager sequencer — the paper's "smaller hardware modules".

Section III-A: the Manager's three tasks "can be handled by three
different smaller hardware modules to save energy", and Section V:
"in the case of a smaller manager or without actively waiting ... the
reconfiguration energy would be the same for each frequencies".

This module is that alternative: a tiny FSM-based sequencer that
drives Start/Finish with a ~12-cycle control cost (vs the MicroBlaze's
120), parses the preamble in dedicated logic, and *sleeps* (clock
gated) instead of actively waiting.  It is interface-compatible with
:class:`~repro.fpga.microblaze.MicroBlaze`, so
:class:`~repro.core.system.UPaRCSystem` accepts either.
"""

from __future__ import annotations

from repro.errors import HardwareModelError
from repro.sim import ActivityTrace, Clock, Simulator

SEQUENCER_CONTROL_CYCLES = 12
SEQUENCER_PRELOAD_CYCLES_PER_WORD = 1   # dedicated copy datapath
SEQUENCER_PARSE_CYCLES = 64


class HardwareSequencer:
    """Minimal hardware replacement for the MicroBlaze manager."""

    #: Marker the power model uses to pick the manager power levels.
    is_hardware = True

    def __init__(self, sim: Simulator, clock: Clock,
                 control_overhead_cycles: int = SEQUENCER_CONTROL_CYCLES,
                 preload_cycles_per_word: int =
                 SEQUENCER_PRELOAD_CYCLES_PER_WORD) -> None:
        if control_overhead_cycles <= 0 or preload_cycles_per_word <= 0:
            raise HardwareModelError("cycle costs must be positive")
        self._sim = sim
        self.clock = clock
        self.control_overhead_cycles = control_overhead_cycles
        self.preload_cycles_per_word = preload_cycles_per_word
        # Same trace interface as the MicroBlaze model.
        self.busy = ActivityTrace(sim, "sequencer.busy")
        self.waiting = ActivityTrace(sim, "sequencer.wait")

    def control_duration_ps(self) -> int:
        return self.clock.cycles_duration(self.control_overhead_cycles)

    def preload_duration_ps(self, words: int) -> int:
        if words < 0:
            raise HardwareModelError("negative word count")
        return self.clock.cycles_duration(
            words * self.preload_cycles_per_word)

    def parse_duration_ps(self) -> int:
        return self.clock.cycles_duration(SEQUENCER_PARSE_CYCLES)

    def copy_duration_ps(self, words: int) -> int:
        """The sequencer has no software copy path; preload speed."""
        return self.preload_duration_ps(words)
