"""FPGA area model: primitive inventories and slice packing (Table II).

Table II reports post-place-and-route slice counts for the three UPaRC
blocks on Virtex-5 and Virtex-6.  The interesting cross-family effect
is that a V5 slice holds 4 LUT6 + 4 FF while a V6 slice holds
4 LUT6 + 8 FF, so flip-flop-dominated modules (DyCloGen, the
decompressor) shrink on V6 while LUT-bound ones (UReC) do not — which
is exactly the pattern in the table (24→18, 1035→900, 26→26).

The packer models a module's slice count as the maximum of its
LUT-bound and FF-bound requirements under a packing efficiency below
1.0 (real P&R never fills every slice; 0.8 reproduces the published
counts from plausible primitive inventories).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class ResourceInventory:
    """Primitive counts of one module (from synthesis)."""

    luts: int
    ffs: int
    bram36: int = 0
    dsp48: int = 0
    dcm: int = 0

    def __post_init__(self) -> None:
        for label, value in (("luts", self.luts), ("ffs", self.ffs),
                             ("bram36", self.bram36), ("dsp48", self.dsp48),
                             ("dcm", self.dcm)):
            if value < 0:
                raise HardwareModelError(f"negative {label} count")

    def __add__(self, other: "ResourceInventory") -> "ResourceInventory":
        return ResourceInventory(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            bram36=self.bram36 + other.bram36,
            dsp48=self.dsp48 + other.dsp48,
            dcm=self.dcm + other.dcm,
        )


@dataclass(frozen=True)
class SlicePacker:
    """Family-specific slice geometry."""

    family: str
    luts_per_slice: int
    ffs_per_slice: int
    packing_efficiency: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.packing_efficiency <= 1.0:
            raise HardwareModelError("packing efficiency must be in (0, 1]")

    def slices(self, inventory: ResourceInventory) -> int:
        """Slices needed for an inventory (max of LUT/FF pressure)."""
        lut_capacity = self.luts_per_slice * self.packing_efficiency
        ff_capacity = self.ffs_per_slice * self.packing_efficiency
        lut_slices = math.ceil(inventory.luts / lut_capacity)
        ff_slices = math.ceil(inventory.ffs / ff_capacity)
        return max(lut_slices, ff_slices)


PACKERS: Dict[str, SlicePacker] = {
    "virtex4": SlicePacker("virtex4", luts_per_slice=2, ffs_per_slice=2),
    "virtex5": SlicePacker("virtex5", luts_per_slice=4, ffs_per_slice=4),
    "virtex6": SlicePacker("virtex6", luts_per_slice=4, ffs_per_slice=8),
}


# Primitive inventories of the system's modules.  The three UPaRC
# blocks reproduce Table II exactly under the packers above; the
# others support the power/energy discussion (MicroBlaze's bulk is why
# a hardware manager would save energy) and the baseline comparisons.
MODULE_INVENTORIES: Dict[str, ResourceInventory] = {
    "dyclogen": ResourceInventory(luts=56, ffs=76, dcm=1),
    "urec": ResourceInventory(luts=82, ffs=64),
    "decompressor": ResourceInventory(luts=2880, ffs=3312, bram36=4),
    "microblaze": ResourceInventory(luts=1500, ffs=1350, bram36=4, dsp48=3),
    "xps_hwicap": ResourceInventory(luts=620, ffs=560, bram36=1),
    "xilinx_dma": ResourceInventory(luts=840, ffs=710),
    "bitstream_bram_256kb": ResourceInventory(luts=0, ffs=0, bram36=64),
}


def slices_for(module: str, family: str) -> int:
    """Slice count of a named module on a named family (Table II)."""
    try:
        inventory = MODULE_INVENTORIES[module]
    except KeyError:
        known = ", ".join(sorted(MODULE_INVENTORIES))
        raise KeyError(f"unknown module {module!r}; known: {known}") from None
    try:
        packer = PACKERS[family]
    except KeyError:
        known = ", ".join(sorted(PACKERS))
        raise KeyError(f"unknown family {family!r}; known: {known}") from None
    return packer.slices(inventory)
