"""Configuration memory and the packet-interpreting configuration logic.

This is what sits *behind* the ICAP pins: the device's configuration
memory (frames addressed by FAR) and the logic that interprets the
incoming word stream — sync detection, type-1/type-2 packet decode,
command sequencing (WCFG before frame data, RCRC, DESYNC), FAR
auto-increment across consecutive frames, and the end-of-bitstream
CRC check.

With this model a UPaRC run does not merely *time* a transfer: the
frames of the reconfigured region really change, and a corrupted or
mis-ordered stream is rejected exactly where the silicon would reject
it.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from repro import accel
from repro.bitstream.crc import ConfigCrc
from repro.bitstream.device import DeviceInfo
from repro.bitstream.format import (
    Command,
    ConfigRegister,
    Opcode,
    SYNC_WORD,
)
from repro.bitstream.frames import FrameAddress
from repro.errors import BitstreamFormatError, DeviceMismatchError

_TYPE1_COUNT_MASK = (1 << 11) - 1
_TYPE2_COUNT_MASK = (1 << 27) - 1


class ConfigurationMemory:
    """Frame store addressed by packed FAR values."""

    def __init__(self, device: DeviceInfo) -> None:
        self.device = device
        self._frames: Dict[int, List[int]] = {}

    def write_frame(self, address: FrameAddress, words: List[int]) -> None:
        if len(words) != self.device.frame_words:
            raise BitstreamFormatError(
                f"frame write of {len(words)} words; {self.device.name} "
                f"frames are {self.device.frame_words} words"
            )
        self._frames[address.pack()] = list(words)

    def read_frame(self, address: FrameAddress) -> Optional[List[int]]:
        """Frame contents, or None if never configured."""
        frame = self._frames.get(address.pack())
        return list(frame) if frame is not None else None

    @property
    def configured_frames(self) -> int:
        return len(self._frames)

    def frames_from(self, start: FrameAddress,
                    count: int) -> List[Optional[List[int]]]:
        """Read ``count`` consecutive frames starting at ``start``."""
        frames = []
        address = start
        for _ in range(count):
            frames.append(self.read_frame(address))
            address = address.next_in(self.device)
        return frames


class _State(enum.Enum):
    UNSYNCED = "unsynced"
    IDLE = "idle"            # synced, expecting a packet header
    PAYLOAD = "payload"      # consuming payload words
    SKIP = "skip"            # consuming payload of a NOP/ignored packet


class ConfigurationLogic:
    """Streaming interpreter of the post-ICAP word stream."""

    def __init__(self, memory: ConfigurationMemory,
                 strict_crc: bool = True) -> None:
        self.memory = memory
        self._strict_crc = strict_crc
        self._crc = ConfigCrc()
        self._state = _State.UNSYNCED
        self._register: Optional[ConfigRegister] = None
        self._opcode = Opcode.NOP
        self._remaining = 0
        self._far: Optional[FrameAddress] = None
        self._command: Optional[Command] = None
        self._frame_buffer: List[int] = []
        self._idcode_checked = False
        self.sync_count = 0
        self.desync_count = 0
        self.frames_written = 0
        self.crc_checks_passed = 0
        #: Words produced by FDRO read packets (readback path).
        self.readback_data: List[int] = []

    # -- public feed ----------------------------------------------------

    def feed_word(self, word: int) -> None:
        if self._state is _State.UNSYNCED:
            if word == SYNC_WORD:
                self._state = _State.IDLE
                self.sync_count += 1
            return  # dummy / bus-width detect words
        if self._state is _State.PAYLOAD:
            self._payload_word(word)
            return
        if self._state is _State.SKIP:
            self._remaining -= 1
            if self._remaining == 0:
                self._state = _State.IDLE
            return
        self._header_word(word)

    def feed_words(self, words: Sequence[int],
                   packed: Optional[bytes] = None) -> None:
        """Feed a chunk of the stream; semantically per-word.

        FDRI frame payloads (which dominate every bitstream) and
        skipped NOP payloads take a bulk path that consumes the
        largest safe span per iteration instead of one word; the
        state machine, frame writes, and CRC accumulation are
        bit-identical to the word loop.  ``packed``, when given, is
        the big-endian serialization of ``words``; the FDRI bulk path
        then folds the CRC from byte slices instead of re-packing.
        """
        index = 0
        total = len(words)
        while index < total:
            if (self._state is _State.PAYLOAD
                    and self._register is ConfigRegister.FDRI
                    and self._command is Command.WCFG
                    and self._far is not None
                    and self._idcode_checked):
                take = min(self._remaining, total - index)
                self._frame_data_block(
                    words[index:index + take],
                    None if packed is None
                    else packed[index * 4:(index + take) * 4])
                self._remaining -= take
                if self._remaining == 0:
                    self._state = _State.IDLE
                index += take
            elif self._state is _State.SKIP:
                take = min(self._remaining, total - index)
                self._remaining -= take
                if self._remaining == 0:
                    self._state = _State.IDLE
                index += take
            else:
                self.feed_word(words[index])
                index += 1

    @property
    def synced(self) -> bool:
        return self._state is not _State.UNSYNCED

    def abort(self) -> None:
        """Abandon the current stream (recovery after a failed load).

        Equivalent to toggling PROG_B on the port side: the decoder
        returns to the pre-sync state and all partial packet state is
        dropped.  Already-written frames remain (as in silicon — a
        failed partial load leaves the region in an undefined mix,
        which is why callers re-load the golden bitstream afterwards).
        """
        self._state = _State.UNSYNCED
        self._register = None
        self._remaining = 0
        self._frame_buffer.clear()
        self._crc.reset()

    # -- packet machinery --------------------------------------------------

    def _header_word(self, word: int) -> None:
        packet_type = word >> 29
        if packet_type == 0b001:
            self._opcode = Opcode((word >> 27) & 0b11)
            address = (word >> 13) & 0x3FFF
            try:
                self._register = ConfigRegister(address)
            except ValueError:
                raise BitstreamFormatError(
                    f"write to undefined register {address}"
                ) from None
            self._remaining = word & _TYPE1_COUNT_MASK
            self._begin_payload()
        elif packet_type == 0b010:
            if self._register is None:
                raise BitstreamFormatError(
                    "type-2 packet without preceding type-1"
                )
            self._opcode = Opcode((word >> 27) & 0b11)
            self._remaining = word & _TYPE2_COUNT_MASK
            self._begin_payload()
        else:
            raise BitstreamFormatError(
                f"invalid packet header {word:#010x}"
            )

    def _begin_payload(self) -> None:
        if self._remaining > 0 and self._opcode is Opcode.WRITE:
            self._state = _State.PAYLOAD
            return
        if self._remaining > 0 and self._opcode is Opcode.READ:
            self._serve_read(self._remaining)
            self._state = _State.IDLE
            return
        if self._remaining > 0:
            # A NOP header can legally carry a payload count; the
            # words are padding and must be consumed, not decoded.
            self._state = _State.SKIP
            return
        self._state = _State.IDLE  # zero-payload header

    def _serve_read(self, count: int) -> None:
        """FDRO readback: stream ``count`` words out of frame memory.

        Requires the RCFG command and a FAR, mirroring the write path's
        sequencing.  (The silicon additionally pads the first pipeline
        frame; that constant is absorbed into the caller's timing.)
        """
        if self._register is not ConfigRegister.FDRO:
            raise BitstreamFormatError(
                f"read from non-readable register {self._register}"
            )
        if self._command is not Command.RCFG:
            raise BitstreamFormatError(
                "FDRO read without a preceding RCFG command"
            )
        if self._far is None:
            raise BitstreamFormatError("FDRO read without a FAR address")
        device = self.memory.device
        remaining = count
        address = self._far
        while remaining > 0:
            frame = self.memory.read_frame(address)
            words = frame if frame is not None \
                else [0] * device.frame_words
            take = min(remaining, len(words))
            self.readback_data.extend(words[:take])
            remaining -= take
            address = address.next_in(device)
        self._far = address

    def _payload_word(self, word: int) -> None:
        assert self._register is not None
        self._dispatch_write(self._register, word)
        self._remaining -= 1
        if self._state is _State.UNSYNCED:
            return  # a DESYNC command ended the session mid-packet
        if self._remaining == 0:
            self._state = _State.IDLE

    # -- register semantics ---------------------------------------------------

    def _dispatch_write(self, register: ConfigRegister, word: int) -> None:
        if register is ConfigRegister.CRC:
            self._check_crc(word)
            return
        self._crc.update(int(register), word)
        if register is ConfigRegister.FAR:
            self._far = FrameAddress.unpack(word)
            self._frame_buffer.clear()
        elif register is ConfigRegister.CMD:
            self._execute_command(Command(word & 0x1F))
        elif register is ConfigRegister.IDCODE:
            if word != self.memory.device.idcode:
                raise DeviceMismatchError(
                    f"bitstream IDCODE {word:#010x} does not match "
                    f"{self.memory.device.name} "
                    f"({self.memory.device.idcode:#010x})"
                )
            self._idcode_checked = True
        elif register is ConfigRegister.FDRI:
            self._frame_data_word(word)
        # COR0/CTL0/MASK/...: accepted, CRC'd, no modelled side effect.

    def _execute_command(self, command: Command) -> None:
        self._command = command
        if command is Command.RCRC:
            self._crc.reset()
        elif command is Command.DESYNC:
            self._state = _State.UNSYNCED
            self._register = None
            self.desync_count += 1
        elif command is Command.WCFG:
            self._frame_buffer.clear()

    def _frame_data_block(self, block: Sequence[int],
                          packed: Optional[bytes] = None) -> None:
        """Bulk FDRI data: one CRC fold, frame-sized memory writes.

        Only entered once the per-word path's preconditions (WCFG
        command, FAR set, IDCODE checked) are established; violations
        still surface through :meth:`_frame_data_word`.
        """
        if packed is None:
            self._crc.update_block(int(ConfigRegister.FDRI), block)
        else:
            self._crc.update_block_bytes(int(ConfigRegister.FDRI), packed)
        device = self.memory.device
        frame_words = device.frame_words
        buffer = self._frame_buffer
        far = self._far
        position = 0
        count = len(block)
        if buffer:
            take = min(frame_words - len(buffer), count)
            buffer.extend(block[:take])
            position = take
            if len(buffer) == frame_words:
                self.memory.write_frame(far, buffer)
                buffer.clear()
                far = far.next_in(device)
                self.frames_written += 1
        frames, tail = accel.chunk_words(block, position, frame_words)
        for frame in frames:
            self.memory.write_frame(far, frame)
            far = far.next_in(device)
        self.frames_written += len(frames)
        buffer.extend(tail)
        self._far = far

    def _frame_data_word(self, word: int) -> None:
        if self._command is not Command.WCFG:
            raise BitstreamFormatError(
                "FDRI data without a preceding WCFG command"
            )
        if self._far is None:
            raise BitstreamFormatError("FDRI data without a FAR address")
        if not self._idcode_checked:
            raise BitstreamFormatError(
                "FDRI data before the IDCODE check"
            )
        self._frame_buffer.append(word)
        if len(self._frame_buffer) == self.memory.device.frame_words:
            self.memory.write_frame(self._far, self._frame_buffer)
            self._frame_buffer.clear()
            self._far = self._far.next_in(self.memory.device)
            self.frames_written += 1

    def _check_crc(self, word: int) -> None:
        if self._crc.check(word):
            self.crc_checks_passed += 1
            self._crc.reset()
            return
        if self._strict_crc:
            raise BitstreamFormatError(
                f"configuration CRC mismatch: stream carries {word:#010x}, "
                f"logic computed {self._crc.value:#010x}"
            )
        # Permissive mode (placeholder CRCs): count it as unchecked.
        self._crc.reset()
