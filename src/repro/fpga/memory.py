"""External bitstream-storage models: CompactFlash, DDR2, cache.

Each baseline controller in Table III is shaped by where it keeps
bitstreams:

* **CompactFlash** (xps_hwicap + SystemACE) — huge capacity, terrible
  bandwidth.  The paper measured ~180 KB/s end to end; the card itself
  sustains a few hundred KB/s through the SystemACE byte interface and
  the driver eats the rest (the driver cost lives in the controller
  model).
* **DDR2 SDRAM** (MST_ICAP) — large capacity, good-but-not-BRAM
  bandwidth: row activation + CAS latency per burst makes the
  effective rate ~half the bus theoretical (235 vs 480 MB/s at
  120 MHz in the paper).
* **Cache** (the 14.5 MB/s xps_hwicap variant of Liu et al.) — the
  processor copies from its own cache, so the memory side is a
  single-cycle hit and the copy loop dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError, HardwareModelError
from repro.units import DataSize, Frequency, PS_PER_S, ceil_div


@dataclass(frozen=True)
class CompactFlash:
    """SystemACE-attached CompactFlash card."""

    capacity: DataSize = DataSize.from_mb(512)
    sustained_bandwidth_kbps: float = 250.0  # card+SystemACE raw rate

    def read_duration_ps(self, size: DataSize) -> int:
        """Raw read time for ``size`` bytes (driver cost excluded)."""
        if size.bytes > self.capacity.bytes:
            raise CapacityError(
                f"read of {size} exceeds CF capacity {self.capacity}"
            )
        bytes_per_second = self.sustained_bandwidth_kbps * 1024
        return round(size.bytes / bytes_per_second * PS_PER_S)

    def word_read_ps(self) -> int:
        return self.read_duration_ps(DataSize(4))


@dataclass(frozen=True)
class Ddr2Sdram:
    """DDR2 behind a memory controller on the system bus.

    Timing is accounted in bus cycles: each burst of
    ``burst_words`` costs the burst itself plus ``burst_setup_cycles``
    of activation/CAS/turnaround.  With the defaults (16-word bursts,
    17 setup cycles) the efficiency is 16/33 = 48.5 %, matching the
    235 / 480 MB/s ratio of MST_ICAP in Table III.
    """

    capacity: DataSize = DataSize.from_mb(256)
    burst_words: int = 16
    burst_setup_cycles: int = 17

    def __post_init__(self) -> None:
        if self.burst_words <= 0 or self.burst_setup_cycles < 0:
            raise HardwareModelError("invalid DDR2 burst parameters")

    def read_cycles(self, words: int) -> int:
        """Bus cycles to stream ``words`` out of DDR2."""
        if words < 0:
            raise HardwareModelError("negative word count")
        bursts = ceil_div(words, self.burst_words)
        return words + bursts * self.burst_setup_cycles

    def efficiency(self) -> float:
        """Sustained fraction of the bus theoretical bandwidth."""
        cycle_cost = self.burst_words + self.burst_setup_cycles
        return self.burst_words / cycle_cost

    def effective_bandwidth_mbps(self, bus_frequency: Frequency,
                                 word_bytes: int = 4) -> float:
        theoretical = bus_frequency.hertz * word_bytes / (1024 * 1024)
        return theoretical * self.efficiency()


@dataclass(frozen=True)
class CacheModel:
    """Processor-local cache: single-cycle hits, bounded footprint."""

    capacity: DataSize = DataSize.from_kb(64)
    hit_cycles: int = 1

    def read_cycles(self, words: int) -> int:
        if words < 0:
            raise HardwareModelError("negative word count")
        return words * self.hit_cycles

    def fits(self, size: DataSize) -> bool:
        return size.bytes <= self.capacity.bytes
