"""Fleet boards: one FPGA + controller + bitstream library.

A :class:`FleetBoard` is the unit the ``repro.serve`` scheduler hands
work to, but it is deliberately serve-agnostic: a board is just a
named FPGA with a reconfiguration controller in front of it and a
:class:`BitstreamLibrary` of the partial bitstreams it may be asked to
load.  Anything that juggles several independent controllers — a
multi-region system, a redundancy experiment, the fleet scheduler —
can use it directly.

The library memoises generated bitstreams per module, so a board that
swaps between the same handful of modules (the Algorithm-On-Demand
workload) pays the generation cost once.  The board remembers which
module its reconfigurable region currently holds, which is what lets
a scheduler exploit module affinity ("warm" boards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.bitstream.generator import PartialBitstream, generate_bitstream
from repro.errors import FleetError
from repro.units import DataSize, Frequency

if TYPE_CHECKING:  # import would cycle: controllers build on fpga
    from repro.controllers.base import (
        ReconfigurationController,
        ReconfigurationResult,
    )

__all__ = ["ModuleImage", "BitstreamLibrary", "FleetBoard"]


@dataclass(frozen=True, order=True)
class ModuleImage:
    """One loadable module: its name and generator identity.

    ``(size_kb, seed)`` fully determines the bitstream bytes (the
    generator is seeded and otherwise default-parameterised), so a
    module image is content-addressable the same way a sweep payload
    is.
    """

    name: str
    size_kb: float
    seed: int

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("module image needs a non-empty name")
        if self.size_kb <= 0:
            raise FleetError(f"module {self.name!r}: size must be "
                             f"positive, got {self.size_kb} KB")


class BitstreamLibrary:
    """Named partial bitstreams, generated lazily and memoised."""

    def __init__(self, modules: Tuple[ModuleImage, ...]) -> None:
        if not modules:
            raise FleetError("a bitstream library needs at least one "
                             "module")
        by_name: Dict[str, ModuleImage] = {}
        for module in modules:
            if module.name in by_name:
                raise FleetError(f"duplicate module name "
                                 f"{module.name!r} in library")
            by_name[module.name] = module
        self._modules = by_name
        self._bitstreams: Dict[str, PartialBitstream] = {}

    @property
    def names(self) -> Tuple[str, ...]:
        """Module names in sorted order (deterministic iteration)."""
        return tuple(sorted(self._modules))

    def __len__(self) -> int:
        return len(self._modules)

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    def image(self, name: str) -> ModuleImage:
        try:
            return self._modules[name]
        except KeyError:
            raise FleetError(
                f"unknown module {name!r}; library has: "
                f"{', '.join(self.names)}") from None

    def bitstream(self, name: str) -> PartialBitstream:
        """The module's partial bitstream (generated on first use)."""
        cached = self._bitstreams.get(name)
        if cached is None:
            image = self.image(name)
            cached = self._bitstreams[name] = generate_bitstream(
                size=DataSize.from_kb(image.size_kb), seed=image.seed)
        return cached


class FleetBoard:
    """One board of a fleet: id + controller + bitstream library.

    The board tracks which module its reconfigurable region currently
    holds (``loaded_module``) and how many reconfigurations it has
    served; :meth:`reconfigure` runs the controller's full cycle-level
    model and updates both.  ``service_generation`` is a bump counter
    a scheduler can use to invalidate in-flight completions when it
    preempts the board.
    """

    def __init__(self, board_id: int,
                 controller: "ReconfigurationController",
                 library: BitstreamLibrary) -> None:
        if board_id < 0:
            raise FleetError(f"board id must be >= 0, got {board_id}")
        self.board_id = board_id
        self.controller = controller
        self.library = library
        #: Name of the module currently configured, or ``None``.
        self.loaded_module: Optional[str] = None
        #: Completed reconfigurations (cold loads through the ICAP).
        self.reconfigurations = 0
        #: Bumped by a scheduler on preemption; an in-flight
        #: completion whose generation no longer matches is stale.
        self.service_generation = 0

    @property
    def name(self) -> str:
        return f"board{self.board_id}"

    def reconfigure(self, module: str,
                    frequency: Optional[Frequency] = None,
                    ) -> "ReconfigurationResult":
        """Load ``module`` through the controller's full model."""
        bitstream = self.library.bitstream(module)
        result = self.controller.reconfigure(bitstream, frequency)
        self.loaded_module = module
        self.reconfigurations += 1
        return result

    def invalidate(self) -> int:
        """Preemption hook: forget the loaded module, bump generation.

        Returns the new generation so the caller can stamp the next
        service it starts.
        """
        self.loaded_module = None
        self.service_generation += 1
        return self.service_generation

    def __repr__(self) -> str:
        loaded = self.loaded_module or "<empty>"
        return (f"FleetBoard({self.board_id}, "
                f"{self.controller.name}, loaded={loaded})")
