"""DMA engines: Xilinx central DMA vs. UReC's custom burst reader.

Section III-B's key design argument: the literature's fast controllers
(BRAM_HWICAP, MST_ICAP, FaRM) all reuse the Xilinx central DMA, which
is large, arbitration-heavy and tops out at 200 MHz; UReC replaces it
with a minimal read-only BRAM streamer that issues one word per cycle
with almost no setup and closes timing far higher.  The two classes
here model exactly that difference, and the DMA ablation bench
(`bench_ablation_dma`) quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrequencyError, HardwareModelError
from repro.units import Frequency, ceil_div


@dataclass(frozen=True)
class XilinxCentralDma:
    """Bus-attached central DMA (the baselines' transfer engine).

    Every ``burst_words`` transfer pays ``burst_setup_cycles`` of bus
    arbitration and descriptor handling.  With the defaults (16-word
    bursts, 5 setup cycles) efficiency is 16/21 = 76.2 %, which at
    120 MHz gives the ~366-371 MB/s of BRAM_HWICAP in Table III.
    """

    max_frequency: Frequency = Frequency.from_mhz(200)
    burst_words: int = 16
    burst_setup_cycles: int = 5

    def __post_init__(self) -> None:
        if self.burst_words <= 0 or self.burst_setup_cycles < 0:
            raise HardwareModelError("invalid DMA burst parameters")

    def check_frequency(self, frequency: Frequency) -> None:
        if frequency > self.max_frequency:
            raise FrequencyError(
                f"Xilinx central DMA cannot close timing at {frequency} "
                f"(limit {self.max_frequency})"
            )

    def transfer_cycles(self, words: int) -> int:
        if words < 0:
            raise HardwareModelError("negative word count")
        bursts = ceil_div(words, self.burst_words)
        return words + bursts * self.burst_setup_cycles

    def efficiency(self) -> float:
        cycle_cost = self.burst_words + self.burst_setup_cycles
        return self.burst_words / cycle_cost


@dataclass(frozen=True)
class CustomBurstReader:
    """UReC's redesigned BRAM interface.

    Read-only, no bus, no descriptors: a two-cycle address setup then
    one word per clock for the whole transfer ("configuration data can
    be transferred at each clock cycle in burst mode").  The tiny logic
    footprint is what lets it close timing at 362.5 MHz.
    """

    max_frequency: Frequency = Frequency.from_mhz(362.5)
    setup_cycles: int = 2

    def check_frequency(self, frequency: Frequency) -> None:
        if frequency > self.max_frequency:
            raise FrequencyError(
                f"custom burst reader demonstrated up to "
                f"{self.max_frequency}; {frequency} requested"
            )

    def transfer_cycles(self, words: int) -> int:
        if words < 0:
            raise HardwareModelError("negative word count")
        if words == 0:
            return 0
        return words + self.setup_cycles

    def efficiency(self) -> float:
        return 1.0
