"""ICAP — Internal Configuration Access Port model.

The hardwired 32-bit configuration port.  The paper's central
observation is that ICAP itself is not the bottleneck: it absorbs one
word per clock, so reconfiguration bandwidth is
``4 bytes x F_icap`` minus whatever the controller wastes.  The model
therefore exposes a *burst absorption* primitive (``accept_burst``)
that accounts exact cycle timing at the current clock, validates the
frequency envelope, and records activity for the power model.

Frequency policy: the datasheet caps ICAP at 100 MHz; the paper drives
it far beyond (362.5 MHz demonstrated on Virtex-5).  The model allows
overclocking up to the device's *demonstrated* limit and raises
:class:`~repro.errors.FrequencyError` beyond it, mirroring the V6
reliability boundary the paper reports.
"""

from __future__ import annotations

import zlib
from fractions import Fraction
from typing import Optional, Sequence

from repro.bitstream.device import DeviceInfo
from repro.bitstream.format import words_to_bytes
from repro.errors import FrequencyError, HardwareModelError
from repro.sim import ActivityTrace, Clock, Simulator
from repro.units import WORD_BYTES, DataSize


class Icap:
    """Cycle-level ICAP transaction model."""

    def __init__(self, sim: Simulator, device: DeviceInfo,
                 clock: Clock, allow_overclock: bool = True,
                 config_logic=None) -> None:
        self._sim = sim
        self.device = device
        self.clock = clock
        self._allow_overclock = allow_overclock
        self.activity = ActivityTrace(sim, "icap")
        self.words_accepted = 0
        self.sessions = 0
        self._enabled = False
        self._crc = 0
        #: Optional :class:`~repro.fpga.config_memory.ConfigurationLogic`
        #: behind the port; when attached, absorbed words are actually
        #: interpreted and configure frames.
        self.config_logic = config_logic

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def word_bytes(self) -> int:
        return self.device.icap_width_bits // 8

    def check_frequency(self) -> None:
        """Validate the current clock against the device envelope."""
        limit = (self.device.icap_fmax_demonstrated if self._allow_overclock
                 else self.device.icap_fmax_nominal)
        if self.clock.frequency > limit:
            raise FrequencyError(
                f"ICAP on {self.device.name} cannot run at "
                f"{self.clock.frequency} (limit {limit}"
                f"{', overclock allowed' if self._allow_overclock else ''})"
            )

    def enable(self) -> None:
        """Assert the EN input (the controller gates it to save power)."""
        if self._enabled:
            raise HardwareModelError("ICAP already enabled")
        self.check_frequency()
        self._enabled = True
        self.sessions += 1
        self.activity.begin()

    def disable(self) -> None:
        if not self._enabled:
            raise HardwareModelError("ICAP not enabled")
        self._enabled = False
        self.activity.end()

    def burst_cycles(self, words: int, words_per_cycle: float = 1.0) -> int:
        """Cycles to absorb ``words`` at the given issue rate.

        ``words_per_cycle`` < 1 models controllers that cannot feed the
        port every cycle (bus-based designs); UReC feeds 1.0.
        """
        if words < 0:
            raise HardwareModelError("negative word count")
        if not 0 < words_per_cycle <= 2:
            raise HardwareModelError(
                f"invalid issue rate {words_per_cycle} words/cycle"
            )
        if words_per_cycle >= 1:
            # Exact ceiling division: Fraction(float) is the float's
            # exact binary value, so no float floor-division rounding
            # can leak into the cycle count (the annotation says int,
            # and float `//` returns float).
            rate = Fraction(words_per_cycle)
            return -(-words * rate.denominator // rate.numerator)
        return round(words / words_per_cycle)

    def accept_burst(self, words: int, words_per_cycle: float = 1.0) -> int:
        """Account a burst; returns its duration in picoseconds.

        The caller (a controller process) yields a wait of the returned
        duration; the model records word count and activity.
        """
        if not self._enabled:
            raise HardwareModelError("burst into disabled ICAP")
        cycles = self.burst_cycles(words, words_per_cycle)
        duration = self.clock.cycles_duration(cycles)
        self.words_accepted += words
        return duration

    def absorb(self, words: Sequence[int],
               words_per_cycle: float = 1.0,
               packed: Optional[bytes] = None) -> int:
        """Accept actual configuration words: timing + integrity.

        Returns the burst duration like :meth:`accept_burst` and folds
        the words into the port's running CRC so a run can be verified
        bit-exact against the source bitstream.  A caller that already
        holds the big-endian serialization of ``words`` (the UReC
        decompression path produces bytes first) passes it as
        ``packed`` to skip the re-pack; it must equal
        ``words_to_bytes(words)``.
        """
        duration = self.accept_burst(len(words), words_per_cycle)
        self._crc = zlib.crc32(words_to_bytes(words) if packed is None
                               else packed, self._crc)
        if self.config_logic is not None:
            self.config_logic.feed_words(words, packed=packed)
        return duration

    def readback(self, origin, frame_count: int):
        """Read ``frame_count`` frames back through the port (FDRO).

        Drives the RCFG/FAR/FDRO packet sequence into the attached
        configuration logic and returns ``(words, duration_ps)``.
        Readback traffic is control-plane: it does not contribute to
        the payload CRC that verifies forward configuration.
        """
        if self.config_logic is None:
            raise HardwareModelError("readback needs configuration logic")
        if not self._enabled:
            raise HardwareModelError("readback through disabled ICAP")
        if frame_count <= 0:
            raise HardwareModelError("frame count must be positive")
        from repro.bitstream.format import (
            Command,
            ConfigPacket,
            ConfigRegister,
            Opcode,
            SYNC_WORD,
            command_packet,
            write_packet,
        )
        logic = self.config_logic
        words_out = frame_count * self.device.frame_words
        sequence = []
        if not logic.synced:
            sequence.append(SYNC_WORD)
        sequence += command_packet(Command.RCFG).encode()
        sequence += write_packet(ConfigRegister.FAR,
                                 [origin.pack()]).encode()
        sequence += ConfigPacket(Opcode.READ, ConfigRegister.FDRO,
                                 [0] * words_out, type2=True).encode()[:2]
        sequence += command_packet(Command.DESYNC).encode()
        before = len(logic.readback_data)
        logic.feed_words(sequence)
        data = logic.readback_data[before:]
        # One cycle per command word in, one per word out, plus the
        # pipeline pad frame the silicon inserts.
        cycles = len(sequence) + words_out + self.device.frame_words
        return data, self.clock.cycles_duration(cycles)

    @property
    def payload_crc(self) -> int:
        """CRC-32 of every byte absorbed since the last reset."""
        return self._crc & 0xFFFFFFFF

    def reset_payload(self) -> None:
        """Start a fresh integrity window (one per reconfiguration)."""
        self._crc = 0
        self.words_accepted = 0

    def data_accepted(self) -> DataSize:
        return DataSize(self.words_accepted * WORD_BYTES)

    def theoretical_bandwidth_mbps(self,
                                   frequency: Optional[object] = None) -> float:
        """4 bytes x frequency, the Fig. 5 'theoretical' plane."""
        freq = frequency if frequency is not None else self.clock.frequency
        return freq.hertz * self.word_bytes / (1024 * 1024)
