"""DCM — digital clock manager with Dynamic Reconfiguration Port.

DyCloGen's substrate (Section III-D): the Virtex-5 DCM_ADV primitive
synthesizes ``F_out = F_in x M / D`` and exposes M/D through the DRP so
they can be reprogrammed at run time *without* partial reconfiguration.

The model implements:

* the legal M/D ranges and output-frequency window of the V5 DFS
  (UG190: M 2..33, D 1..32, DFS output roughly 32..400 MHz beyond
  which the DCM will not lock);
* the DRP register protocol — DADDR/DI writes followed by a reset
  pulse — with the real sequencing enforced (writes while a
  reconfiguration is mid-lock are protocol errors);
* the relock time during which the output clock is not usable (the
  paper's frequency changes happen between reconfigurations, and the
  Manager must absorb this latency).

The paper's headline operating point, ``F_in = 100 MHz, M = 29,
D = 8 -> 362.5 MHz``, is checked in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import DrpProtocolError, FrequencyError
from repro.sim import Clock, Simulator
from repro.units import Frequency, us

# DRP register addresses of the M/D fields (DCM_ADV, UG191 appendix).
DADDR_D = 0x50
DADDR_M = 0x51

M_RANGE = (2, 33)
D_RANGE = (1, 32)

# DFS output window for a -1 speed-grade Virtex-5 (low-frequency mode
# extended by the paper's overclocking up to the demonstrated maximum).
FOUT_MIN = Frequency.from_mhz(32)
FOUT_MAX = Frequency.from_mhz(400)

# Relock time after a DRP update.  UG191 specifies LOCK within tens of
# microseconds for DFS at these frequencies; 50 us is a conservative
# mid-range figure, and the value only shifts the (rare) retune cost,
# never the per-reconfiguration bandwidth.
DEFAULT_LOCK_TIME_PS = us(50)


@dataclass(frozen=True)
class DcmSettings:
    """One (M, D) operating point."""

    multiplier: int
    divisor: int

    def __post_init__(self) -> None:
        if not M_RANGE[0] <= self.multiplier <= M_RANGE[1]:
            raise FrequencyError(
                f"M={self.multiplier} outside DCM range {M_RANGE}"
            )
        if not D_RANGE[0] <= self.divisor <= D_RANGE[1]:
            raise FrequencyError(
                f"D={self.divisor} outside DCM range {D_RANGE}"
            )

    def output(self, f_in: Frequency) -> Frequency:
        return f_in.scaled(self.multiplier, self.divisor)


#: Memo for :func:`best_settings` — the search is a pure function of
#: the three frequencies, and DyCloGen retunes hit the same handful of
#: operating points over and over (the hardware analogue is literally
#: a lookup ROM).
_BEST_SETTINGS_CACHE: dict = {}


def best_settings(f_in: Frequency, target: Frequency,
                  fout_max: Frequency = FOUT_MAX) -> DcmSettings:
    """The (M, D) pair whose output is closest to ``target``.

    Exhaustive search of the legal space (DyCloGen does the same in a
    small lookup ROM).  Ties prefer the smaller multiplier (lower VCO
    stress / jitter).  Raises when no legal pair lands within the DFS
    window.  Results are memoised: the search is pure in the three
    frequencies and :class:`DcmSettings` is frozen, so the cached
    object is safe to share.
    """
    cache_key = (f_in.hertz, target.hertz, fout_max.hertz)
    cached = _BEST_SETTINGS_CACHE.get(cache_key)
    if cached is not None:
        return cached
    best: Optional[Tuple[int, int, DcmSettings]] = None
    for multiplier in range(M_RANGE[0], M_RANGE[1] + 1):
        for divisor in range(D_RANGE[0], D_RANGE[1] + 1):
            f_out = f_in.scaled(multiplier, divisor)
            if f_out < FOUT_MIN or f_out > fout_max:
                continue
            error = abs(f_out.hertz - target.hertz)
            key = (error, multiplier)
            if best is None or key < (best[0], best[1]):
                best = (error, multiplier,
                        DcmSettings(multiplier, divisor))
    if best is None:
        raise FrequencyError(
            f"no DCM setting reaches {target} from {f_in} within "
            f"[{FOUT_MIN}, {fout_max}]"
        )
    _BEST_SETTINGS_CACHE[cache_key] = best[2]
    return best[2]


class Dcm:
    """DCM_ADV with DRP reprogramming and relock latency."""

    def __init__(self, sim: Simulator, f_in: Frequency,
                 settings: DcmSettings,
                 output_clock: Clock,
                 lock_time_ps: int = DEFAULT_LOCK_TIME_PS) -> None:
        self._sim = sim
        self.f_in = f_in
        self._settings = settings
        self._lock_time_ps = lock_time_ps
        self.output_clock = output_clock
        self._pending_m: Optional[int] = None
        self._pending_d: Optional[int] = None
        self._locked = True
        self._lock_ready_at = sim.now
        self.retune_count = 0
        output_clock.retune(settings.output(f_in))

    @property
    def settings(self) -> DcmSettings:
        return self._settings

    @property
    def locked(self) -> bool:
        return self._locked and self._sim.now >= self._lock_ready_at

    def drp_write(self, address: int, value: int) -> None:
        """Stage an M or D value through the DRP."""
        if not self.locked:
            raise DrpProtocolError(
                "DRP write while DCM is relocking (wait for LOCKED)"
            )
        if address == DADDR_M:
            self._pending_m = value
        elif address == DADDR_D:
            self._pending_d = value
        else:
            raise DrpProtocolError(f"unknown DRP address {address:#x}")

    def apply(self) -> int:
        """Pulse reset to latch staged values; returns relock duration.

        The output clock carries the new frequency from *now* in the
        simulation (the interesting timing effect is the lock stall,
        which the caller must wait out before using the clock).
        """
        if self._pending_m is None and self._pending_d is None:
            raise DrpProtocolError("apply() with no staged DRP writes")
        multiplier = (self._pending_m if self._pending_m is not None
                      else self._settings.multiplier)
        divisor = (self._pending_d if self._pending_d is not None
                   else self._settings.divisor)
        new_settings = DcmSettings(multiplier, divisor)
        f_out = new_settings.output(self.f_in)
        if f_out < FOUT_MIN or f_out > FOUT_MAX:
            raise FrequencyError(
                f"DCM output {f_out} outside DFS window "
                f"[{FOUT_MIN}, {FOUT_MAX}]"
            )
        self._settings = new_settings
        self._pending_m = None
        self._pending_d = None
        self.output_clock.retune(f_out)
        self._lock_ready_at = self._sim.now + self._lock_time_ps
        self.retune_count += 1
        return self._lock_time_ps

    def retune_to(self, target: Frequency,
                  fout_max: Frequency = FOUT_MAX) -> int:
        """Full DRP sequence to the best (M, D) for ``target``.

        Returns the relock duration the caller must wait.
        """
        settings = best_settings(self.f_in, target, fout_max)
        self.drp_write(DADDR_M, settings.multiplier)
        self.drp_write(DADDR_D, settings.divisor)
        return self.apply()
