"""Hardware component models.

Cycle-level transaction models of every block in the paper's Figure 2
system and the baseline controllers' substrates:

* :class:`Icap` — the Internal Configuration Access Port primitive.
* :class:`Bram` — dual-port block-RAM bitstream buffer.
* :class:`Dcm` — digital clock manager with the DRP reprogramming
  protocol (DyCloGen's substrate).
* :class:`MicroBlaze` — cycle-cost model of the soft-core manager.
* :mod:`repro.fpga.memory` — CompactFlash / DDR2 / cache storage.
* :mod:`repro.fpga.dma` — Xilinx central DMA vs. UReC's custom reader.
* :class:`HardwareDecompressor` — streaming decompressor timing model.
* :mod:`repro.fpga.area` — primitive inventories and slice packing
  (Table II).
"""

from repro.fpga.icap import Icap
from repro.fpga.bram import Bram
from repro.fpga.dcm import Dcm, DcmSettings
from repro.fpga.microblaze import MicroBlaze
from repro.fpga.memory import CacheModel, CompactFlash, Ddr2Sdram
from repro.fpga.dma import CustomBurstReader, XilinxCentralDma
from repro.fpga.decompressor import (
    DECOMPRESSOR_LIBRARY,
    DecompressorSpec,
    HardwareDecompressor,
)
from repro.fpga.area import (
    ResourceInventory,
    SlicePacker,
    MODULE_INVENTORIES,
    slices_for,
)
from repro.fpga.fleet import BitstreamLibrary, FleetBoard, ModuleImage

__all__ = [
    "Icap",
    "Bram",
    "Dcm",
    "DcmSettings",
    "MicroBlaze",
    "CacheModel",
    "CompactFlash",
    "Ddr2Sdram",
    "CustomBurstReader",
    "XilinxCentralDma",
    "HardwareDecompressor",
    "DecompressorSpec",
    "DECOMPRESSOR_LIBRARY",
    "ResourceInventory",
    "SlicePacker",
    "MODULE_INVENTORIES",
    "slices_for",
    "BitstreamLibrary",
    "FleetBoard",
    "ModuleImage",
]
