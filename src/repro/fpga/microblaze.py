"""MicroBlaze manager cycle-cost model.

The Manager in Fig. 2 is a MicroBlaze at 100 MHz.  Only three of its
behaviours matter to the paper's numbers, and each reduces to a cycle
cost at the manager clock:

* **Control overhead** — driving "Start" and detecting "Finish" costs a
  constant ~120 cycles (1.2 us at 100 MHz).  Fig. 5 pins this down:
  at 362.5 MHz a 6.5 KB bitstream reaches 78.8 % of theoretical
  bandwidth, which implies exactly this fixed overhead.
* **Software copy loop** — xps_hwicap moves every word through the
  processor: load, store to the HWICAP FIFO, poll status.  From the
  14.5 MB/s the paper cites for the cached variant at 100 MHz, the
  loop costs ~26 cycles/word.
* **Active wait** — the manager spins on "Finish" during UPaRC
  reconfigurations (the paper's explanation for why energy is not
  flat across frequencies).  The wait itself is an activity interval
  the power model charges.

The same model also exposes preload-copy costs (external memory to
BRAM over the peripheral bus).
"""

from __future__ import annotations

from repro.errors import HardwareModelError
from repro.sim import ActivityTrace, Clock, Simulator
from repro.units import Frequency

DEFAULT_MANAGER_FREQUENCY = Frequency.from_mhz(100)

# Calibrated cycle costs (see module docstring).
CONTROL_OVERHEAD_CYCLES = 120
XPS_COPY_CYCLES_PER_WORD = 26
PRELOAD_COPY_CYCLES_PER_WORD = 8
PARSE_PREAMBLE_CYCLES = 400


class MicroBlaze:
    """Manager processor: constant-cost control plus copy loops."""

    def __init__(self, sim: Simulator, clock: Clock,
                 control_overhead_cycles: int = CONTROL_OVERHEAD_CYCLES,
                 copy_cycles_per_word: int = XPS_COPY_CYCLES_PER_WORD,
                 preload_cycles_per_word: int = PRELOAD_COPY_CYCLES_PER_WORD,
                 ) -> None:
        for label, value in (("control", control_overhead_cycles),
                             ("copy", copy_cycles_per_word),
                             ("preload", preload_cycles_per_word)):
            if value <= 0:
                raise HardwareModelError(f"{label} cycle cost must be positive")
        self._sim = sim
        self.clock = clock
        self.control_overhead_cycles = control_overhead_cycles
        self.copy_cycles_per_word = copy_cycles_per_word
        self.preload_cycles_per_word = preload_cycles_per_word
        # Busy = executing instructions (control, copy, parse).
        self.busy = ActivityTrace(sim, "microblaze.busy")
        # Waiting = spinning on "Finish" (still burns power!).
        self.waiting = ActivityTrace(sim, "microblaze.wait")

    def control_duration_ps(self) -> int:
        """Start-trigger + Finish-detection overhead."""
        return self.clock.cycles_duration(self.control_overhead_cycles)

    def copy_duration_ps(self, words: int) -> int:
        """Software word-copy loop (the xps_hwicap data path)."""
        if words < 0:
            raise HardwareModelError("negative word count")
        return self.clock.cycles_duration(words * self.copy_cycles_per_word)

    def preload_duration_ps(self, words: int) -> int:
        """Bus copy from external memory into the BRAM preload port."""
        if words < 0:
            raise HardwareModelError("negative word count")
        return self.clock.cycles_duration(
            words * self.preload_cycles_per_word)

    def parse_duration_ps(self) -> int:
        """Preamble parsing of one bitstream file."""
        return self.clock.cycles_duration(PARSE_PREAMBLE_CYCLES)
