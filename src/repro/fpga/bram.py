"""Dual-port block-RAM bitstream buffer.

UReC's bitstream store: 256 KB of BRAM with one port owned by the
Manager (preloading at CLK_1) and the other by UReC (burst reads at
CLK_2).  Because the two ports are independent, preloading can overlap
with computation, and the reconfiguration-time cost is only the read
side — the property Section III-B builds on.

Two modelling details matter to the results:

* **Capacity** — 256 KB (64 K words) by default; oversized bitstreams
  must go through compression (operating mode ii).  The first word the
  Manager writes is the size+mode header of Fig. 3.
* **Frequency** — Virtex-5 BRAM is guaranteed to 300 MHz.  The paper
  nevertheless reads it at 362.5 MHz; the model allows driving the read
  port beyond spec when ``allow_overclock`` is set (UReC's custom
  interface is why this works), but never beyond the demonstrated ICAP
  limit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CapacityError, FrequencyError, HardwareModelError
from repro.sim import ActivityTrace, Clock, Simulator
from repro.units import WORD_BYTES, DataSize, Frequency

DEFAULT_BRAM_BYTES = 256 * 1024


class Bram:
    """Dual-port BRAM: port A preloads, port B streams out."""

    def __init__(self, sim: Simulator, capacity: DataSize = DataSize(DEFAULT_BRAM_BYTES),
                 max_frequency: Frequency = Frequency.from_mhz(300),
                 allow_overclock: bool = True) -> None:
        if capacity.bytes <= 0 or capacity.bytes % WORD_BYTES:
            raise CapacityError(
                f"BRAM capacity must be a positive word multiple, got "
                f"{capacity.bytes}"
            )
        self._sim = sim
        self.capacity = capacity
        self.max_frequency = max_frequency
        self._allow_overclock = allow_overclock
        self._words: List[int] = [0] * capacity.words
        self.valid_words = 0
        self.port_a_activity = ActivityTrace(sim, "bram.port_a")
        self.port_b_activity = ActivityTrace(sim, "bram.port_b")
        self._port_b_enabled = False

    # -- port A: Manager preload --------------------------------------

    def preload(self, words: List[int], offset: int = 0) -> None:
        """Write ``words`` starting at word ``offset`` (port A).

        Timing is accounted by the Manager (bus + memory read side);
        the BRAM itself accepts one word per CLK_1 cycle.
        """
        if offset < 0:
            raise CapacityError("negative offset")
        if offset + len(words) > self.capacity.words:
            raise CapacityError(
                f"preload of {len(words)} words at offset {offset} exceeds "
                f"BRAM capacity of {self.capacity.words} words "
                f"({self.capacity})"
            )
        if words:
            # Bulk range check; only walk per-word to name the first
            # offender (identical error to the historical loop).
            if min(words) < 0 or max(words) >> 32:
                for word in words:
                    if not 0 <= word < (1 << 32):
                        raise HardwareModelError(
                            f"word {word:#x} is not 32-bit")
            self._words[offset:offset + len(words)] = words
        self.valid_words = max(self.valid_words, offset + len(words))

    def preload_cycles(self, words: int) -> int:
        """Port-A cycles to accept ``words`` (one per cycle)."""
        return words

    # -- port B: UReC burst read --------------------------------------

    def enable_read_port(self, clock: Clock) -> None:
        """EN assertion on port B; validates the frequency envelope."""
        if self._port_b_enabled:
            raise HardwareModelError("BRAM read port already enabled")
        if not self._allow_overclock and clock.frequency > self.max_frequency:
            raise FrequencyError(
                f"BRAM read port at {clock.frequency} exceeds guaranteed "
                f"{self.max_frequency}"
            )
        self._port_b_enabled = True
        self.port_b_activity.begin()

    def disable_read_port(self) -> None:
        if not self._port_b_enabled:
            raise HardwareModelError("BRAM read port not enabled")
        self._port_b_enabled = False
        self.port_b_activity.end()

    def read_word(self, address: int) -> int:
        """Combinational-view read used for header decoding."""
        if not self._port_b_enabled:
            raise HardwareModelError("read from disabled port B")
        if not 0 <= address < self.capacity.words:
            raise CapacityError(f"word address {address} out of range")
        return self._words[address]

    def read_burst(self, start: int, count: int) -> List[int]:
        """Burst read of ``count`` words (one per port-B cycle)."""
        if not self._port_b_enabled:
            raise HardwareModelError("burst read from disabled port B")
        if start < 0 or start + count > self.capacity.words:
            raise CapacityError(
                f"burst [{start}, {start + count}) exceeds BRAM capacity"
            )
        return self._words[start:start + count]

    def fits(self, size: DataSize) -> bool:
        """Whether a payload fits (+1 word for the Fig. 3 header)."""
        return size.words + 1 <= self.capacity.words

    @property
    def stored(self) -> Optional[DataSize]:
        if self.valid_words == 0:
            return None
        return DataSize.from_words(self.valid_words)
