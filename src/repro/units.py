"""Physical-unit value types used across the simulator.

The discrete-event kernel counts time in integer **picoseconds** so that
clock periods derived from DCM ``F_in * M / D`` synthesis stay exact for
every frequency the paper uses (e.g. 362.5 MHz has a period of
2758.62... ps; we round to the nearest picosecond and keep the error
below one part in 10^3 over a full reconfiguration, far below the
measurement noise of the original testbed).

Three small frozen value types are provided:

* :class:`Frequency` — stored in hertz.
* :class:`TimePS` helpers — plain ``int`` picoseconds with conversion
  functions, because simulation timestamps are hot-path values.
* :class:`DataSize` — stored in bytes, with the KB/MB conventions the
  paper uses (binary: 1 KB = 1024 B), and bandwidth helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# One second, millisecond, microsecond, nanosecond in picoseconds.
PS_PER_S = 1_000_000_000_000
PS_PER_MS = 1_000_000_000
PS_PER_US = 1_000_000
PS_PER_NS = 1_000

BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * 1024
BYTES_PER_GB = 1024 * 1024 * 1024

WORD_BYTES = 4  # ICAP and BRAM data paths in this system are 32-bit.


@dataclass(frozen=True, order=True)
class Frequency:
    """A clock frequency, stored exactly in hertz.

    Instances are immutable and totally ordered, so frequency envelopes
    (``freq <= component.max_frequency``) read naturally.
    """

    hertz: int

    def __post_init__(self) -> None:
        if self.hertz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hertz} Hz")

    @classmethod
    def from_mhz(cls, mhz: float) -> "Frequency":
        """Build a frequency from megahertz (the paper's unit)."""
        return cls(round(mhz * 1_000_000))

    @classmethod
    def from_khz(cls, khz: float) -> "Frequency":
        return cls(round(khz * 1_000))

    @property
    def mhz(self) -> float:
        return self.hertz / 1_000_000

    @property
    def period_ps(self) -> int:
        """Clock period in integer picoseconds (rounded to nearest)."""
        return max(1, round(PS_PER_S / self.hertz))

    def cycles_in(self, duration_ps: int) -> int:
        """Whole clock cycles that fit in ``duration_ps`` picoseconds."""
        return duration_ps // self.period_ps

    def duration_of(self, cycles: int) -> int:
        """Duration of ``cycles`` clock cycles, in picoseconds."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        return cycles * self.period_ps

    def scaled(self, mult: int, div: int) -> "Frequency":
        """``F_out = F_in * M / D`` — the DCM synthesis equation."""
        if mult <= 0 or div <= 0:
            raise ValueError("M and D must be positive")
        return Frequency(round(self.hertz * mult / div))

    def __str__(self) -> str:
        return f"{self.mhz:g} MHz"


@dataclass(frozen=True, order=True)
class DataSize:
    """A payload size in bytes, with the binary-KB convention."""

    bytes: int

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValueError(f"size must be non-negative, got {self.bytes}")

    @classmethod
    def from_kb(cls, kb: float) -> "DataSize":
        return cls(round(kb * BYTES_PER_KB))

    @classmethod
    def from_mb(cls, mb: float) -> "DataSize":
        return cls(round(mb * BYTES_PER_MB))

    @classmethod
    def from_words(cls, words: int) -> "DataSize":
        return cls(words * WORD_BYTES)

    @property
    def kb(self) -> float:
        return self.bytes / BYTES_PER_KB

    @property
    def mb(self) -> float:
        return self.bytes / BYTES_PER_MB

    @property
    def words(self) -> int:
        """Size in whole 32-bit words, rounding up a ragged tail."""
        return (self.bytes + WORD_BYTES - 1) // WORD_BYTES

    def __add__(self, other: "DataSize") -> "DataSize":
        return DataSize(self.bytes + other.bytes)

    def __sub__(self, other: "DataSize") -> "DataSize":
        return DataSize(self.bytes - other.bytes)

    def __str__(self) -> str:
        if self.bytes >= BYTES_PER_MB:
            return f"{self.mb:.2f} MB"
        if self.bytes >= BYTES_PER_KB:
            return f"{self.kb:.1f} KB"
        return f"{self.bytes} B"


def bandwidth_mbps(size: DataSize, duration_ps: int) -> float:
    """Average bandwidth in MB/s (binary MB) for a transfer.

    This is the figure of merit of the whole paper: Table III and
    Fig. 5 are bandwidths computed exactly this way.
    """
    if duration_ps <= 0:
        raise ValueError("duration must be positive")
    return size.bytes / BYTES_PER_MB * PS_PER_S / duration_ps


def theoretical_bandwidth_mbps(frequency: Frequency,
                               bytes_per_cycle: int = WORD_BYTES) -> float:
    """Theoretical streaming bandwidth at one transfer per cycle.

    The paper's "theoretical bandwidth" line in Fig. 5:
    4 bytes/cycle x 362.5 MHz = 1.45 GB/s (decimal GB in the paper's
    prose; we report binary MB/s like Table III).
    """
    return frequency.hertz * bytes_per_cycle / BYTES_PER_MB


def us(value: float) -> int:
    """Microseconds -> picoseconds."""
    return round(value * PS_PER_US)


def ms(value: float) -> int:
    """Milliseconds -> picoseconds."""
    return round(value * PS_PER_MS)


def ns(value: float) -> int:
    """Nanoseconds -> picoseconds."""
    return round(value * PS_PER_NS)


def ps_to_us(duration_ps: int) -> float:
    return duration_ps / PS_PER_US


def ps_to_ms(duration_ps: int) -> float:
    return duration_ps / PS_PER_MS


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division, used for cycle counts everywhere."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def isclose_rel(measured: float, expected: float, rel: float) -> bool:
    """Relative-tolerance comparison used by reproduction checks."""
    return math.isclose(measured, expected, rel_tol=rel)
